//! Simulation statistics: counters, online means, histograms, and
//! time-weighted averages.
//!
//! These are the building blocks of the simulation reports (drop counts,
//! latency distributions, mean queue occupancy over virtual time, …).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A plain monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0 when `total == 0`).
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// Neumaier's compensated summation (the improved Kahan algorithm).
///
/// A naive `sum += term` loop loses low-order bits every time `sum` and
/// `term` differ in magnitude; over millions of simulation events the
/// error drifts with *event order*, so two runs that merely process the
/// same packets in a different interleaving can report different
/// statistics. Carrying the running compensation term keeps the result
/// faithful to the mathematical sum (error independent of length for
/// well-scaled inputs), which is what the determinism contract needs
/// from every long-running float accumulator. The `npcheck` linter
/// flags raw `+=` float accumulation in this module for this reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KahanSum {
    sum: f64,
    /// Running compensation: low-order bits lost from `sum` so far.
    c: f64,
}

impl KahanSum {
    /// A sum at zero.
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Fold in one term.
    #[inline]
    pub fn add(&mut self, term: f64) {
        let t = self.sum + term;
        // Neumaier's branch: recover the low bits of whichever operand
        // was smaller (plain Kahan loses them when |term| > |sum|).
        if self.sum.abs() >= term.abs() {
            self.c += (self.sum - t) + term;
        } else {
            self.c += (term - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum + self.c
    }

    /// Merge another compensated sum into this one.
    pub fn merge(&mut self, other: &KahanSum) {
        self.add(other.sum);
        self.add(other.c);
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct WelfordMean {
    n: u64,
    mean: f64,
    m2: KahanSum,
    min: f64,
    max: f64,
}

impl WelfordMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        WelfordMean {
            n: 0,
            mean: 0.0,
            m2: KahanSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        // The Welford mean recurrence is itself a compensated update
        // (the correction shrinks as 1/n); wrapping it in KahanSum
        // would change the algorithm, not fix it.
        // npcheck: allow(float-accum) — Welford recurrence, see above
        self.mean += d / self.n as f64;
        self.m2.add(d * (x - self.mean));
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased; 0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2.sum() / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &WelfordMean) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        // npcheck: allow(float-accum) — Chan's merge recurrence, see push()
        self.mean += d * n2 / n;
        self.m2.merge(&other.m2);
        self.m2.add(d * d * n1 * n2 / n);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A log-scaled latency histogram over `u64` nanosecond samples.
///
/// Buckets are powers of two of nanoseconds (bucket *i* holds samples in
/// `[2^i, 2^(i+1))`, bucket 0 holds `[0, 2)`), giving ~2× resolution over
/// twelve decades — enough to summarize packet latencies without
/// per-sample storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < 2 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Record a [`SimTime`] duration.
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1): upper bound of the bucket
    /// containing the q-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper edge of bucket i.
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue
/// occupancy over virtual time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: KahanSum,
    start: SimTime,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// An empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: KahanSum::new(),
            start: SimTime::ZERO,
            started: false,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    ///
    /// The signal is assumed to have held its previous value since the
    /// previous call. Out-of-order times are clamped (treated as `now ==
    /// last_time`), preserving monotonicity.
    pub fn update(&mut self, now: SimTime, value: f64) {
        if !self.started {
            self.started = true;
            self.start = now;
            self.last_time = now;
            self.last_value = value;
            return;
        }
        let now = now.max(self.last_time);
        let dt = (now - self.last_time).as_nanos() as f64;
        self.weighted_sum.add(self.last_value * dt);
        self.last_time = now;
        self.last_value = value;
    }

    /// The time-weighted mean over `[first update, now]`.
    pub fn mean_until(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let now = now.max(self.last_time);
        let total = (now - self.start).as_nanos() as f64;
        if total == 0.0 {
            return self.last_value;
        }
        let tail = (now - self.last_time).as_nanos() as f64;
        (self.weighted_sum.sum() + self.last_value * tail) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!((c.fraction_of(10) - 0.5).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn kahan_recovers_cancelled_low_bits() {
        // Naive summation yields 0.0 here: 1.0 vanishes into 1e100.
        let mut k = KahanSum::new();
        for term in [1.0, 1e100, 1.0, -1e100] {
            k.add(term);
        }
        assert_eq!(k.sum(), 2.0);
    }

    #[test]
    fn kahan_beats_naive_on_many_small_terms() {
        let mut k = KahanSum::new();
        let mut naive = 0.0f64;
        for _ in 0..10_000_000 {
            k.add(0.1);
            naive += 0.1;
        }
        let exact = 1_000_000.0;
        assert!((k.sum() - exact).abs() <= (naive - exact).abs());
        assert!((k.sum() - exact).abs() < 1e-6, "kahan={}", k.sum());
    }

    #[test]
    fn kahan_merge_equals_sequential() {
        let mut whole = KahanSum::new();
        let mut a = KahanSum::new();
        let mut b = KahanSum::new();
        for i in 0..1000 {
            let x = (i as f64).cos() * 1e8 + 1e-8;
            whole.add(x);
            if i % 2 == 0 {
                a.add(x)
            } else {
                b.add(x)
            }
        }
        a.merge(&b);
        assert!((a.sum() - whole.sum()).abs() < 1e-6);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = WelfordMean::new();
        for &x in &data {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut all = WelfordMean::new();
        let mut a = WelfordMean::new();
        let mut b = WelfordMean::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            all.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        // True median 500; bucket upper bound must be >= 500 and within 2x.
        assert!((500..=1023).contains(&p50), "p50={p50}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.nonzero_buckets()[0].0, 0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.update(SimTime::from_nanos(0), 0.0);
        tw.update(SimTime::from_nanos(10), 10.0); // value 0 for 10ns
        tw.update(SimTime::from_nanos(20), 0.0); // value 10 for 10ns
        let m = tw.mean_until(SimTime::from_nanos(20));
        assert!((m - 5.0).abs() < 1e-12, "m={m}");
        // Holding 0 for another 20ns halves the mean.
        let m2 = tw.mean_until(SimTime::from_nanos(40));
        assert!((m2 - 2.5).abs() < 1e-12, "m2={m2}");
    }

    #[test]
    fn time_weighted_empty_and_instant() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(SimTime::from_secs(1)), 0.0);
        let mut tw2 = TimeWeighted::new();
        tw2.update(SimTime::from_nanos(5), 7.0);
        assert_eq!(tw2.mean_until(SimTime::from_nanos(5)), 7.0);
    }
}
