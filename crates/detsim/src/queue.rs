//! Bounded FIFO queues with drop accounting.
//!
//! Models the per-core input queues of the network processor: each core has
//! a fixed number of packet-descriptor slots (32 in the paper, after
//! Ohlendorf et al.); a packet dispatched to a full queue is **lost**.

use std::collections::VecDeque;

/// Result of attempting to enqueue into a [`BoundedQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Item was accepted; payload is the new queue length.
    Enqueued(usize),
    /// Queue was full; the item was dropped.
    Dropped,
}

impl PushOutcome {
    /// Whether the item was accepted.
    pub fn is_enqueued(self) -> bool {
        matches!(self, PushOutcome::Enqueued(_))
    }
}

/// Fixed-capacity FIFO with cumulative enqueue/drop counters.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    enqueued: u64,
    dropped: u64,
    /// High-water mark of queue occupancy.
    peak: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items. A zero capacity queue
    /// drops everything (useful for fault-injection tests).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enqueued: 0,
            dropped: 0,
            peak: 0,
        }
    }

    /// Attempt to enqueue; drops (and counts) when full.
    pub fn push(&mut self, item: T) -> PushOutcome {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            PushOutcome::Dropped
        } else {
            self.items.push_back(item);
            self.enqueued += 1;
            if self.items.len() > self.peak {
                self.peak = self.items.len();
            }
            PushOutcome::Enqueued(self.items.len())
        }
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Borrow the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity (the paper's overload predicate
    /// compares `len()` against a threshold ≤ capacity).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative accepted items.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Cumulative dropped items.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Highest occupancy ever observed.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Drain all items (counters preserved). Returns them oldest-first.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// Iterate items oldest-first without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            assert!(q.push(i).is_enqueued());
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drops_when_full() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.push('a'), PushOutcome::Enqueued(1));
        assert_eq!(q.push('b'), PushOutcome::Enqueued(2));
        assert_eq!(q.push('c'), PushOutcome::Dropped);
        assert_eq!(q.dropped_count(), 1);
        assert_eq!(q.enqueued_count(), 2);
        // Space frees after a pop.
        assert_eq!(q.pop(), Some('a'));
        assert!(q.push('d').is_enqueued());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.push(1), PushOutcome::Dropped);
        assert_eq!(q.dropped_count(), 1);
        assert!(q.is_full());
        assert!(q.is_empty());
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut q = BoundedQueue::new(10);
        q.push(1);
        q.push(2);
        q.push(3);
        q.pop();
        q.pop();
        q.push(4);
        assert_eq!(q.peak_len(), 3);
    }

    #[test]
    fn drain_and_iter() {
        let mut q = BoundedQueue::new(4);
        q.push(1);
        q.push(2);
        let seen: Vec<i32> = q.iter().copied().collect();
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(q.drain_all(), vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.enqueued_count(), 2);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut q = BoundedQueue::new(2);
        q.push(9);
        assert_eq!(q.front(), Some(&9));
        assert_eq!(q.len(), 1);
    }
}
