//! Timed plans: deterministic schedules of domain actions.
//!
//! A [`TimedPlan`] is an ordered list of `(SimTime, T)` entries — the
//! kernel-side representation of "inject action X at time T" scripts
//! (fault plans, traffic scripts, …). Entries are kept **stably sorted
//! by time**: two entries at the same instant preserve their insertion
//! order, so priming them into an [`EventQueue`](crate::EventQueue)
//! (which breaks time ties by insertion sequence) replays them exactly
//! in plan order. The plan itself is domain-agnostic; `npsim` layers
//! its `FaultPlan` on top.

use crate::time::SimTime;

/// A stably time-sorted schedule of `(SimTime, T)` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPlan<T> {
    entries: Vec<(SimTime, T)>,
}

impl<T> Default for TimedPlan<T> {
    fn default() -> Self {
        TimedPlan {
            entries: Vec::new(),
        }
    }
}

impl<T> TimedPlan<T> {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a plan from arbitrary-order entries; the result is stably
    /// sorted by time (equal-time entries keep their input order).
    pub fn from_entries(mut entries: Vec<(SimTime, T)>) -> Self {
        entries.sort_by_key(|(at, _)| *at);
        TimedPlan { entries }
    }

    /// Append one entry, keeping the plan sorted. An entry earlier than
    /// the current tail is inserted before every strictly-later entry
    /// (stable with respect to equal times).
    pub fn push(&mut self, at: SimTime, item: T) {
        let idx = self.entries.partition_point(|(t, _)| *t <= at);
        self.entries.insert(idx, (at, item));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<&(SimTime, T)> {
        self.entries.get(idx)
    }

    /// Iterate entries in schedule order.
    pub fn iter(&self) -> std::slice::Iter<'_, (SimTime, T)> {
        self.entries.iter()
    }

    /// The sorted entries as a slice.
    pub fn entries(&self) -> &[(SimTime, T)] {
        &self.entries
    }

    /// Consume the plan, yielding its sorted entries.
    pub fn into_entries(self) -> Vec<(SimTime, T)> {
        self.entries
    }

    /// Time of the last entry (the plan horizon), if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.entries.last().map(|(t, _)| *t)
    }
}

impl<'a, T> IntoIterator for &'a TimedPlan<T> {
    type Item = &'a (SimTime, T);
    type IntoIter = std::slice::Iter<'a, (SimTime, T)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn entries_are_sorted_by_time() {
        let plan = TimedPlan::from_entries(vec![(t(30), "c"), (t(10), "a"), (t(20), "b")]);
        let order: Vec<&str> = plan.iter().map(|&(_, s)| s).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(plan.last_time(), Some(t(30)));
    }

    #[test]
    fn equal_times_keep_insertion_order() {
        let mut plan = TimedPlan::new();
        plan.push(t(5), "first");
        plan.push(t(5), "second");
        plan.push(t(5), "third");
        let order: Vec<&str> = plan.iter().map(|&(_, s)| s).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn push_inserts_out_of_order_entry_in_place() {
        let mut plan = TimedPlan::new();
        plan.push(t(10), "late");
        plan.push(t(1), "early");
        plan.push(t(10), "later-still");
        let order: Vec<&str> = plan.iter().map(|&(_, s)| s).collect();
        assert_eq!(order, ["early", "late", "later-still"]);
    }

    #[test]
    fn empty_plan_basics() {
        let plan: TimedPlan<u32> = TimedPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.get(0), None);
        assert_eq!(plan.last_time(), None);
    }
}
