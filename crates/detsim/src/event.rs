//! Deterministic event queue.
//!
//! A binary-heap priority queue keyed by `(SimTime, sequence)` where
//! `sequence` is a monotonically increasing insertion counter. Two events
//! scheduled for the same instant therefore fire in the order they were
//! scheduled, which makes whole-simulation replays bit-identical — the
//! property every experiment in this workspace relies on.

use crate::time::SimTime;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: fire time, insertion sequence, payload.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Insertion sequence number (tie-breaker; unique per queue).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with deterministic FIFO tie-breaking.
///
/// ```
/// use detsim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "b");
/// q.push(SimTime::from_nanos(5), "a");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// Returns the sequence number assigned to the event (useful in tests
    /// asserting ordering).
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time, seq, event });
        seq
    }

    /// Remove and return the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Remove and return the earliest event with its full entry (including
    /// the sequence number).
    pub fn pop_entry(&mut self) -> Option<EventEntry<E>> {
        let e = self.heap.pop();
        if e.is_some() {
            self.popped += 1;
        }
        e
    }

    /// Fire time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events ever popped from this queue.
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Drop all pending events (counters are preserved).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), "a");
        q.push(SimTime::from_nanos(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_nanos(3), "c");
        q.push(SimTime::from_nanos(3), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(q.pop().is_none());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.popped_count(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(9), ());
        q.push(SimTime::from_nanos(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(4));
    }

    #[test]
    fn pop_entry_exposes_seq() {
        let mut q = EventQueue::new();
        let s0 = q.push(SimTime::ZERO, 'x');
        let e = q.pop_entry().unwrap();
        assert_eq!(e.seq, s0);
        assert_eq!(e.event, 'x');
    }
}
