//! A hierarchical timer wheel — an O(1)-amortized alternative to the
//! binary-heap event queue.
//!
//! DES kernels for high event rates (here: one event per packet arrival
//! and departure) often replace the `O(log n)` heap with a timing wheel
//! (Varghese & Lauck, SOSP 1987). This implementation provides the same
//! deterministic semantics as [`crate::EventQueue`] — earliest time
//! first, FIFO among equal times — which the equivalence property test in
//! `tests/proptests.rs` pins down.
//!
//! Four levels of 256 slots at a configurable tick granularity cover
//! ~4×10⁹ ticks; events beyond the horizon go to an overflow heap.

use crate::event::EventQueue;
use crate::time::SimTime;
use std::collections::{BinaryHeap, VecDeque};

const SLOTS: usize = 256;
const LEVELS: usize = 4;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// Min-heap adapter over `(time, seq)` for the current-tick ready set.
#[derive(Debug)]
struct ReadyEntry<E>(Entry<E>);

impl<E> PartialEq for ReadyEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}

impl<E> Eq for ReadyEntry<E> {}

impl<E> PartialOrd for ReadyEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ReadyEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the smallest
        // `(time, seq)` at the top.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

/// A 4-level, 256-slot hierarchical timer wheel.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// Nanoseconds per tick of the innermost wheel.
    tick_ns: u64,
    /// `log2(tick_ns)` when the tick is a power of two (`u32::MAX`
    /// otherwise): time→tick conversion happens on every push and
    /// cascade, and a shift is an order of magnitude cheaper than a
    /// 64-bit division by a runtime divisor.
    tick_shift: u32,
    /// `levels[l][slot]` holds entries expiring in that slot's span.
    levels: Vec<Vec<VecDeque<Entry<E>>>>,
    /// Events beyond the wheel horizon.
    overflow: EventQueue<Entry<E>>,
    /// Entries belonging to the *current* tick, drained from the
    /// innermost slot in one pass and served in `(time, seq)` order.
    /// While this set is non-empty the clock does not advance, so new
    /// same-tick pushes are routed here directly.
    ready: BinaryHeap<ReadyEntry<E>>,
    /// Current time in ticks (all entries before this have been popped).
    now_ticks: u64,
    next_seq: u64,
    len: usize,
    /// Entries resident in the wheel levels (excludes overflow).
    wheel_len: usize,
    /// Per-level entry counts; lets `pop` jump the clock over tick
    /// ranges where no slot can expire and no cascade can move anything.
    occupancy: [usize; LEVELS],
    /// One bit per innermost slot (256 bits): set when the slot *may*
    /// hold entries. Finding the next occupied level-0 slot is then a
    /// handful of word scans instead of probing up to 255 deques.
    occ0: [u64; SLOTS / 64],
}

impl<E> TimerWheel<E> {
    /// A wheel with `tick_ns` nanoseconds per innermost tick.
    ///
    /// # Panics
    /// Panics if `tick_ns == 0`.
    pub fn new(tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "tick must be positive");
        TimerWheel {
            tick_ns,
            tick_shift: if tick_ns.is_power_of_two() {
                tick_ns.trailing_zeros()
            } else {
                u32::MAX
            },
            levels: (0..LEVELS)
                // npcheck: allow(unbounded-queue) — wheel slots are bounded by the in-flight timer count, which the engine caps via its event budget
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            overflow: EventQueue::new(),
            ready: BinaryHeap::new(),
            now_ticks: 0,
            next_seq: 0,
            len: 0,
            wheel_len: 0,
            occupancy: [0; LEVELS],
            occ0: [0; SLOTS / 64],
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn ticks_of(&self, t: SimTime) -> u64 {
        if self.tick_shift != u32::MAX {
            t.as_nanos() >> self.tick_shift
        } else {
            t.as_nanos() / self.tick_ns
        }
    }

    /// Span (in ticks) of one slot at `level` — `256^level`, computed as
    /// a shift (slot arithmetic runs on every push and cascade; a `pow`
    /// with a runtime exponent or a division by a runtime span would
    /// dominate the hot path).
    #[inline]
    fn slot_span(level: usize) -> u64 {
        1u64 << (8 * level as u32)
    }

    /// Horizon (in ticks) of `level` relative to now — `256^(level+1)`.
    #[inline]
    fn level_horizon(level: usize) -> u64 {
        1u64 << (8 * (level as u32 + 1))
    }

    /// The `level`-slot a tick count falls into: bits `[8·level, 8·level+8)`.
    #[inline]
    fn slot_of(ticks: u64, level: usize) -> usize {
        ((ticks >> (8 * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Place an entry; returns whether it landed in the wheel (vs the
    /// overflow heap).
    fn place(&mut self, entry: Entry<E>) -> bool {
        // Past-dated entries are clamped to "now" for placement (their
        // timestamp is preserved); a DES never schedules in the past, but
        // the structure must not strand such an entry in an already-passed
        // ring slot.
        let ticks = self.ticks_of(entry.time).max(self.now_ticks);
        let delta = ticks.saturating_sub(self.now_ticks);
        if delta == 0 {
            // Current-tick entries bypass the ring: the innermost slot
            // for this tick has already been drained (or will be drained
            // wholesale), so they join the ready set directly. Counted in
            // `len` only, like overflow entries.
            self.ready.push(ReadyEntry(entry));
            return false;
        }
        for level in 0..LEVELS {
            if delta < Self::level_horizon(level) {
                let slot = Self::slot_of(ticks, level);
                if level == 0 {
                    self.occ0[slot >> 6] |= 1 << (slot & 63);
                }
                self.levels[level][slot].push_back(entry);
                self.occupancy[level] += 1;
                return true;
            }
        }
        self.overflow.push(entry.time, entry);
        false
    }

    /// Schedule `event` at `time`. Scheduling in the past (before the
    /// last pop) is clamped to "now".
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.place(Entry { time, seq, event }) {
            self.wheel_len += 1;
        }
    }

    /// Cascade: pull the current outer slot's entries down one level.
    fn cascade(&mut self, level: usize) {
        let slot = Self::slot_of(self.now_ticks, level);
        if self.levels[level][slot].is_empty() {
            return;
        }
        let entries: Vec<Entry<E>> = self.levels[level][slot].drain(..).collect();
        self.occupancy[level] -= entries.len();
        for e in entries {
            // Re-place relative to the advanced clock; entries that fall
            // into an inner level land in a (strictly) finer position.
            let ticks = self.ticks_of(e.time);
            let delta = ticks.saturating_sub(self.now_ticks);
            let dest = (0..level)
                .find(|&l| delta < Self::level_horizon(l))
                // Still belongs at this level (same slot is impossible —
                // we just drained it at the current position).
                .unwrap_or(level);
            let s = Self::slot_of(ticks, dest);
            if dest == 0 {
                self.occ0[s >> 6] |= 1 << (s & 63);
            }
            self.levels[dest][s].push_back(e);
            self.occupancy[dest] += 1;
        }
    }

    /// Distance in ticks (1..=256, wrapping) from slot `s0` to the next
    /// marked level-0 slot, via the occupancy bitmap; `None` when no bit
    /// is set. `s0`'s own bit must already be cleared by the caller.
    #[inline]
    fn next_occ0_distance(&self, s0: usize) -> Option<u64> {
        const WORDS: usize = SLOTS / 64;
        let w0 = s0 >> 6;
        let b0 = (s0 & 63) as u32;
        // Bits strictly above `b0` in the starting word come first.
        let high = if b0 == 63 {
            0
        } else {
            self.occ0[w0] & (u64::MAX << (b0 + 1))
        };
        if high != 0 {
            let p = (w0 << 6) + high.trailing_zeros() as usize;
            return Some((p - s0) as u64);
        }
        // Then whole words, wrapping; the final iteration revisits `w0`,
        // whose remaining set bits are all ≤ `b0` (wrapped distances).
        for i in 1..=WORDS {
            let w = (w0 + i) % WORDS;
            let m = self.occ0[w];
            if m != 0 {
                let p = (w << 6) + m.trailing_zeros() as usize;
                let d = (p + SLOTS - s0) % SLOTS;
                return Some(if d == 0 { SLOTS as u64 } else { d as u64 });
            }
        }
        None
    }

    /// Remove and return the earliest event as `(time, event)`; equal
    /// times pop in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        // Serve the current tick's ready set first. While it is
        // non-empty the clock is pinned, every new push for this tick
        // lands here directly, and the remaining overflow entries are
        // ≥ one full horizon away — so the head of `ready` is the
        // global `(time, seq)` minimum.
        if let Some(ReadyEntry(e)) = self.ready.pop() {
            self.len -= 1;
            return Some((e.time, e.event));
        }
        // Pull any overflow entries that now fit the wheel horizon. An
        // overflow entry placed long ago can have a *smaller* absolute
        // time than wheel entries pushed after the clock advanced; without
        // this, such an entry would be overtaken (ordering violation).
        while let Some(t) = self.overflow.peek_time() {
            if self.ticks_of(t).saturating_sub(self.now_ticks) < Self::level_horizon(LEVELS - 1) {
                let e = self.overflow.pop().expect("peeked").1;
                if self.place(e) {
                    self.wheel_len += 1;
                }
            } else {
                break;
            }
        }
        // Fast path: the wheel proper is empty — everything pending lives
        // in the overflow heap, so jump the clock straight to its head.
        if self.wheel_len == 0 {
            let e = self.overflow.pop().expect("len > 0 with empty wheel").1;
            self.now_ticks = self.now_ticks.max(self.ticks_of(e.time));
            self.len -= 1;
            return Some((e.time, e.event));
        }
        loop {
            // Drain the innermost current slot first. The whole slot is
            // moved into the ready heap in one pass — O(k log k) for a
            // k-entry tick instead of an O(k) scan per pop — and the
            // minimum is served from there.
            let slot0 = (self.now_ticks % SLOTS as u64) as usize;
            if !self.levels[0][slot0].is_empty() {
                let k = self.levels[0][slot0].len();
                self.wheel_len -= k;
                self.occupancy[0] -= k;
                self.occ0[slot0 >> 6] &= !(1u64 << (slot0 & 63));
                self.len -= 1;
                // `ready` is empty here (drained at the top of `pop`), so
                // a single-entry slot — the common case at fine ticks —
                // skips the ready heap entirely.
                if k == 1 {
                    if let Some(e) = self.levels[0][slot0].pop_front() {
                        return Some((e.time, e.event));
                    }
                }
                self.ready
                    .extend(self.levels[0][slot0].drain(..).map(ReadyEntry));
                let ReadyEntry(e) = self.ready.pop().expect("slot was non-empty");
                return Some((e.time, e.event));
            }
            self.occ0[slot0 >> 6] &= !(1u64 << (slot0 & 63));
            // The innermost slot is empty, so nothing can expire until
            // either (a) the next occupied level-0 slot — a level-0 entry's
            // expiry tick is the unique tick in `[now, now+SLOTS)` congruent
            // to its slot index, so scanning ahead finds it exactly — or
            // (b) the next cascade/refill boundary of an *occupied* outer
            // level (or the overflow heap). Boundaries of empty levels host
            // no-op cascades, so the clock can jump straight over them.
            let mut jump = u64::MAX;
            if self.occupancy[0] > 0 {
                if let Some(d) = self.next_occ0_distance(slot0) {
                    jump = d;
                }
            }
            for level in 1..LEVELS {
                if self.occupancy[level] > 0 {
                    let span = Self::slot_span(level);
                    jump = jump.min(span - self.now_ticks % span);
                }
            }
            if !self.overflow.is_empty() {
                let h = Self::level_horizon(LEVELS - 1);
                jump = jump.min(h - self.now_ticks % h);
            }
            debug_assert!(jump != u64::MAX, "non-empty wheel with nothing actionable");
            if jump == u64::MAX {
                // Unreachable when occupancy is consistent; fall back to
                // single-tick stepping rather than warping the clock.
                jump = 1;
            }
            // Advance the clock (by at least one tick); cascade outer
            // levels when we land on their slot boundary.
            self.now_ticks += jump;
            if self.now_ticks.is_multiple_of(Self::slot_span(1)) {
                self.cascade(1);
            }
            if self.now_ticks.is_multiple_of(Self::slot_span(2)) {
                self.cascade(2);
            }
            if self.now_ticks.is_multiple_of(Self::slot_span(3)) {
                self.cascade(3);
            }
            if self
                .now_ticks
                .is_multiple_of(Self::level_horizon(LEVELS - 1))
            {
                // Refill from overflow whatever now fits the wheel.
                while let Some(t) = self.overflow.peek_time() {
                    if self.ticks_of(t).saturating_sub(self.now_ticks)
                        < Self::level_horizon(LEVELS - 1)
                    {
                        let e = self.overflow.pop().expect("peeked").1;
                        if self.place(e) {
                            self.wheel_len += 1;
                        }
                    } else {
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new(1);
        w.push(SimTime::from_nanos(300), 3);
        w.push(SimTime::from_nanos(100), 1);
        w.push(SimTime::from_nanos(200), 2);
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut w = TimerWheel::new(10);
        for i in 0..50 {
            w.push(SimTime::from_nanos(555), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn spans_multiple_levels() {
        let mut w = TimerWheel::new(1);
        // Level 0 (< 256), level 1 (< 65536), level 2, and overflow-ish.
        let times = [5u64, 1_000, 100_000, 20_000_000, 5_000_000_000];
        for (i, &t) in times.iter().enumerate() {
            w.push(SimTime::from_nanos(t), i);
        }
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| w.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
        assert_eq!(popped.len(), 5);
        for (i, &(t, e)) in popped.iter().enumerate() {
            assert_eq!(t, times[i]);
            assert_eq!(e, i);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut w = TimerWheel::new(1);
        w.push(SimTime::from_nanos(50), "a");
        assert_eq!(w.pop().unwrap().1, "a");
        // Push after the clock advanced.
        w.push(SimTime::from_nanos(60), "b");
        w.push(SimTime::from_nanos(55), "c");
        assert_eq!(w.pop().unwrap().1, "c");
        assert_eq!(w.pop().unwrap().1, "b");
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn past_push_is_popped_promptly_with_original_time() {
        let mut w = TimerWheel::new(1);
        w.push(SimTime::from_nanos(500), "future");
        // Advance the clock past 100 by popping nothing... simulate by
        // popping the 500 event, then pushing something dated earlier.
        assert_eq!(w.pop().unwrap().1, "future");
        w.push(SimTime::from_nanos(100), "late");
        let (t, e) = w.pop().expect("late entry retrievable");
        assert_eq!(e, "late");
        assert_eq!(t, SimTime::from_nanos(100), "timestamp preserved");
    }

    #[test]
    fn overflow_entry_is_not_overtaken_by_nearer_late_pushes() {
        // Entry A lands in overflow (beyond the 2^32-tick horizon); the
        // clock then advances close to A, and B is pushed just after A.
        // A must still pop first.
        let mut w = TimerWheel::new(1);
        let a_t = (256u64 * 256 * 256 * 256) + 100;
        w.push(SimTime::from_nanos(a_t), "A");
        w.push(SimTime::from_nanos(a_t - 50), "warp"); // also overflow
        assert_eq!(w.pop().unwrap().1, "warp"); // clock jumps near A
        w.push(SimTime::from_nanos(a_t + 50), "B"); // fits the wheel now
        assert_eq!(w.pop().unwrap().1, "A", "overflow entry must pop first");
        assert_eq!(w.pop().unwrap().1, "B");
    }

    #[test]
    fn coarse_ticks_keep_order_by_seq() {
        // With 1 µs ticks, 100 ns-apart events share a tick; total order
        // must still hold ((time, seq) comparison inside the slot).
        let mut w = TimerWheel::new(1_000);
        w.push(SimTime::from_nanos(900), 2);
        w.push(SimTime::from_nanos(100), 1);
        assert_eq!(w.pop().unwrap().1, 1);
        assert_eq!(w.pop().unwrap().1, 2);
    }
}
