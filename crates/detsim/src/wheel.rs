//! A hierarchical timer wheel — an O(1)-amortized alternative to the
//! binary-heap event queue.
//!
//! DES kernels for high event rates (here: one event per packet arrival
//! and departure) often replace the `O(log n)` heap with a timing wheel
//! (Varghese & Lauck, SOSP 1987). This implementation provides the same
//! deterministic semantics as [`crate::EventQueue`] — earliest time
//! first, FIFO among equal times — which the equivalence property test in
//! `tests/proptests.rs` pins down.
//!
//! Four levels of 256 slots at a configurable tick granularity cover
//! ~4×10⁹ ticks; events beyond the horizon go to an overflow heap.

use crate::event::EventQueue;
use crate::time::SimTime;
use std::collections::VecDeque;

const SLOTS: usize = 256;
const LEVELS: usize = 4;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// A 4-level, 256-slot hierarchical timer wheel.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// Nanoseconds per tick of the innermost wheel.
    tick_ns: u64,
    /// `levels[l][slot]` holds entries expiring in that slot's span.
    levels: Vec<Vec<VecDeque<Entry<E>>>>,
    /// Events beyond the wheel horizon.
    overflow: EventQueue<Entry<E>>,
    /// Current time in ticks (all entries before this have been popped).
    now_ticks: u64,
    next_seq: u64,
    len: usize,
    /// Entries resident in the wheel levels (excludes overflow).
    wheel_len: usize,
}

impl<E> TimerWheel<E> {
    /// A wheel with `tick_ns` nanoseconds per innermost tick.
    ///
    /// # Panics
    /// Panics if `tick_ns == 0`.
    pub fn new(tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "tick must be positive");
        TimerWheel {
            tick_ns,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            overflow: EventQueue::new(),
            now_ticks: 0,
            next_seq: 0,
            len: 0,
            wheel_len: 0,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn ticks_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.tick_ns
    }

    /// Span (in ticks) of one slot at `level`.
    fn slot_span(level: usize) -> u64 {
        (SLOTS as u64).pow(level as u32)
    }

    /// Horizon (in ticks) of `level` relative to now.
    fn level_horizon(level: usize) -> u64 {
        (SLOTS as u64).pow(level as u32 + 1)
    }

    /// Place an entry; returns whether it landed in the wheel (vs the
    /// overflow heap).
    fn place(&mut self, entry: Entry<E>) -> bool {
        // Past-dated entries are clamped to "now" for placement (their
        // timestamp is preserved); a DES never schedules in the past, but
        // the structure must not strand such an entry in an already-passed
        // ring slot.
        let ticks = self.ticks_of(entry.time).max(self.now_ticks);
        let delta = ticks.saturating_sub(self.now_ticks);
        for level in 0..LEVELS {
            if delta < Self::level_horizon(level) {
                let slot = ((ticks / Self::slot_span(level)) % SLOTS as u64) as usize;
                self.levels[level][slot].push_back(entry);
                return true;
            }
        }
        self.overflow.push(entry.time, entry);
        false
    }

    /// Schedule `event` at `time`. Scheduling in the past (before the
    /// last pop) is clamped to "now".
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.place(Entry { time, seq, event }) {
            self.wheel_len += 1;
        }
    }

    /// Cascade: pull the current outer slot's entries down one level.
    fn cascade(&mut self, level: usize) {
        let slot = ((self.now_ticks / Self::slot_span(level)) % SLOTS as u64) as usize;
        let entries: Vec<Entry<E>> = self.levels[level][slot].drain(..).collect();
        for e in entries {
            // Re-place relative to the advanced clock; entries that fall
            // into an inner level land in a (strictly) finer position.
            let ticks = self.ticks_of(e.time);
            let delta = ticks.saturating_sub(self.now_ticks);
            let dest = (0..level)
                .find(|&l| delta < Self::level_horizon(l))
                // Still belongs at this level (same slot is impossible —
                // we just drained it at the current position).
                .unwrap_or(level);
            let s = ((ticks / Self::slot_span(dest)) % SLOTS as u64) as usize;
            self.levels[dest][s].push_back(e);
        }
    }

    /// Remove and return the earliest event as `(time, event)`; equal
    /// times pop in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        // Pull any overflow entries that now fit the wheel horizon. An
        // overflow entry placed long ago can have a *smaller* absolute
        // time than wheel entries pushed after the clock advanced; without
        // this, such an entry would be overtaken (ordering violation).
        while let Some(t) = self.overflow.peek_time() {
            if self.ticks_of(t).saturating_sub(self.now_ticks) < Self::level_horizon(LEVELS - 1) {
                let e = self.overflow.pop().expect("peeked").1;
                if self.place(e) {
                    self.wheel_len += 1;
                }
            } else {
                break;
            }
        }
        // Fast path: the wheel proper is empty — everything pending lives
        // in the overflow heap, so jump the clock straight to its head.
        if self.wheel_len == 0 {
            let e = self.overflow.pop().expect("len > 0 with empty wheel").1;
            self.now_ticks = self.now_ticks.max(self.ticks_of(e.time));
            self.len -= 1;
            return Some((e.time, e.event));
        }
        loop {
            // Drain the innermost current slot first.
            let slot0 = (self.now_ticks % SLOTS as u64) as usize;
            if !self.levels[0][slot0].is_empty() {
                // The slot may hold multiple distinct (time, seq): pick
                // the minimum to preserve total order.
                let q = &self.levels[0][slot0];
                let (best_idx, _) = q
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.time, e.seq))
                    .expect("non-empty");
                let e = self.levels[0][slot0].remove(best_idx).expect("index valid");
                self.len -= 1;
                self.wheel_len -= 1;
                return Some((e.time, e.event));
            }
            // Advance the clock one tick; cascade outer levels when we
            // wrap into their next slot.
            self.now_ticks += 1;
            if self.now_ticks.is_multiple_of(Self::slot_span(1)) {
                self.cascade(1);
            }
            if self.now_ticks.is_multiple_of(Self::slot_span(2)) {
                self.cascade(2);
            }
            if self.now_ticks.is_multiple_of(Self::slot_span(3)) {
                self.cascade(3);
            }
            if self
                .now_ticks
                .is_multiple_of(Self::level_horizon(LEVELS - 1))
            {
                // Refill from overflow whatever now fits the wheel.
                while let Some(t) = self.overflow.peek_time() {
                    if self.ticks_of(t).saturating_sub(self.now_ticks)
                        < Self::level_horizon(LEVELS - 1)
                    {
                        let e = self.overflow.pop().expect("peeked").1;
                        if self.place(e) {
                            self.wheel_len += 1;
                        }
                    } else {
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new(1);
        w.push(SimTime::from_nanos(300), 3);
        w.push(SimTime::from_nanos(100), 1);
        w.push(SimTime::from_nanos(200), 2);
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut w = TimerWheel::new(10);
        for i in 0..50 {
            w.push(SimTime::from_nanos(555), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn spans_multiple_levels() {
        let mut w = TimerWheel::new(1);
        // Level 0 (< 256), level 1 (< 65536), level 2, and overflow-ish.
        let times = [5u64, 1_000, 100_000, 20_000_000, 5_000_000_000];
        for (i, &t) in times.iter().enumerate() {
            w.push(SimTime::from_nanos(t), i);
        }
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| w.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
        assert_eq!(popped.len(), 5);
        for (i, &(t, e)) in popped.iter().enumerate() {
            assert_eq!(t, times[i]);
            assert_eq!(e, i);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut w = TimerWheel::new(1);
        w.push(SimTime::from_nanos(50), "a");
        assert_eq!(w.pop().unwrap().1, "a");
        // Push after the clock advanced.
        w.push(SimTime::from_nanos(60), "b");
        w.push(SimTime::from_nanos(55), "c");
        assert_eq!(w.pop().unwrap().1, "c");
        assert_eq!(w.pop().unwrap().1, "b");
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn past_push_is_popped_promptly_with_original_time() {
        let mut w = TimerWheel::new(1);
        w.push(SimTime::from_nanos(500), "future");
        // Advance the clock past 100 by popping nothing... simulate by
        // popping the 500 event, then pushing something dated earlier.
        assert_eq!(w.pop().unwrap().1, "future");
        w.push(SimTime::from_nanos(100), "late");
        let (t, e) = w.pop().expect("late entry retrievable");
        assert_eq!(e, "late");
        assert_eq!(t, SimTime::from_nanos(100), "timestamp preserved");
    }

    #[test]
    fn overflow_entry_is_not_overtaken_by_nearer_late_pushes() {
        // Entry A lands in overflow (beyond the 2^32-tick horizon); the
        // clock then advances close to A, and B is pushed just after A.
        // A must still pop first.
        let mut w = TimerWheel::new(1);
        let a_t = (256u64 * 256 * 256 * 256) + 100;
        w.push(SimTime::from_nanos(a_t), "A");
        w.push(SimTime::from_nanos(a_t - 50), "warp"); // also overflow
        assert_eq!(w.pop().unwrap().1, "warp"); // clock jumps near A
        w.push(SimTime::from_nanos(a_t + 50), "B"); // fits the wheel now
        assert_eq!(w.pop().unwrap().1, "A", "overflow entry must pop first");
        assert_eq!(w.pop().unwrap().1, "B");
    }

    #[test]
    fn coarse_ticks_keep_order_by_seq() {
        // With 1 µs ticks, 100 ns-apart events share a tick; total order
        // must still hold ((time, seq) comparison inside the slot).
        let mut w = TimerWheel::new(1_000);
        w.push(SimTime::from_nanos(900), 2);
        w.push(SimTime::from_nanos(100), 1);
        assert_eq!(w.pop().unwrap().1, 1);
        assert_eq!(w.pop().unwrap().1, 2);
    }
}
