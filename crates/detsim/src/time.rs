//! Virtual simulation time.
//!
//! Time is kept in integer **nanoseconds** (`u64`), which gives ~584 years
//! of range, exact arithmetic (no floating-point drift across schedulers,
//! which would destroy determinism), and a total order suitable for the
//! event queue.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point (or span) of virtual time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators treat it uniformly, mirroring how DES kernels use
/// a single numeric time type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time. Useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative inputs saturate to zero.
    ///
    /// The paper specifies processing delays in microseconds (e.g. `3.53 µs`
    /// for malware scanning); this is the bridge from those constants.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1_000_000_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiply a duration by an integer scale factor (used by the
    /// rate/time scaling described in DESIGN.md).
    #[inline]
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick the largest unit that keeps at least one integer digit.
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn fractional_micros_round() {
        assert_eq!(SimTime::from_micros_f64(3.53).as_nanos(), 3530);
        assert_eq!(SimTime::from_micros_f64(0.5).as_nanos(), 500);
        assert_eq!(SimTime::from_micros_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 14_000);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn scaled_multiplies() {
        assert_eq!(
            SimTime::from_micros(2).scaled(50),
            SimTime::from_micros(100)
        );
        assert_eq!(SimTime::MAX.scaled(2), SimTime::MAX); // saturates
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_micros(2)), "2.000µs");
        assert_eq!(format!("{}", SimTime::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(4)), "4.000s");
    }

    #[test]
    fn roundtrip_f64() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
