//! # detsim — deterministic discrete-event simulation kernel
//!
//! A small, allocation-light discrete-event simulation (DES) kernel used as
//! the substrate for the network-processor model in this workspace. The
//! original paper built its evaluation on a SpecC simulation model; this
//! crate provides the equivalent semantics in safe Rust:
//!
//! * [`SimTime`] — virtual time in integer nanoseconds (no floating-point
//!   drift, total ordering).
//! * [`EventQueue`] — a priority queue of `(time, event)` pairs with
//!   **deterministic tie-breaking** by insertion sequence, so identical
//!   inputs always replay identically.
//! * [`rng`] — seed-derivation utilities (SplitMix64) and reproducible
//!   per-component RNG streams.
//! * [`BoundedQueue`] — a fixed-capacity FIFO with drop accounting, used to
//!   model per-core input queues of packet descriptors.
//! * [`stats`] — counters, histograms, and time-weighted averages for
//!   simulation reports.
//!
//! The kernel is intentionally generic: it knows nothing about packets or
//! cores. See the `npsim` crate for the network-processor model built on it.
//!
//! ## Example
//!
//! ```
//! use detsim::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_micros(2), Ev::Tick(2));
//! q.push(SimTime::from_micros(1), Ev::Tick(1));
//! q.push(SimTime::from_micros(1), Ev::Tick(10)); // same time: FIFO order
//!
//! assert_eq!(q.pop().unwrap().1, Ev::Tick(1));
//! assert_eq!(q.pop().unwrap().1, Ev::Tick(10));
//! assert_eq!(q.pop().unwrap().1, Ev::Tick(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod plan;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod wheel;

pub use event::{EventEntry, EventQueue};
pub use plan::TimedPlan;
pub use queue::{BoundedQueue, PushOutcome};
pub use rng::{derive_seed, SeedSequence, SplitMix64};
pub use stats::{Counter, Histogram, KahanSum, TimeWeighted, WelfordMean};
pub use time::SimTime;
pub use wheel::TimerWheel;
