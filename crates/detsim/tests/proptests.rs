//! Property-based tests for the detsim kernel invariants.

use detsim::{BoundedQueue, EventQueue, Histogram, SimTime, WelfordMean};
use proptest::prelude::*;

proptest! {
    /// Popping the event queue yields a non-decreasing time sequence, and
    /// equal-time events come out in insertion order.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(e) = q.pop_entry() {
            if let Some((lt, lseq)) = last {
                prop_assert!(e.time >= lt);
                if e.time == lt {
                    prop_assert!(e.seq as usize > lseq);
                }
            }
            last = Some((e.time, e.seq as usize));
        }
    }

    /// Conservation: enqueued = popped + still-queued; drops happen iff the
    /// queue was full at push time.
    #[test]
    fn bounded_queue_conservation(cap in 0usize..40, ops in proptest::collection::vec(any::<bool>(), 0..400)) {
        let mut q = BoundedQueue::new(cap);
        let mut popped = 0u64;
        let mut model_len = 0usize;
        for (i, push) in ops.into_iter().enumerate() {
            if push {
                let out = q.push(i);
                if model_len < cap {
                    prop_assert!(out.is_enqueued());
                    model_len += 1;
                } else {
                    prop_assert!(!out.is_enqueued());
                }
            } else if q.pop().is_some() {
                popped += 1;
                model_len -= 1;
            }
            prop_assert_eq!(q.len(), model_len);
        }
        prop_assert_eq!(q.enqueued_count(), popped + q.len() as u64);
    }

    /// FIFO: items leave a bounded queue in the order they were accepted.
    #[test]
    fn bounded_queue_fifo(cap in 1usize..20, n in 0usize..100) {
        let mut q = BoundedQueue::new(cap);
        let mut accepted = Vec::new();
        for i in 0..n {
            if q.push(i).is_enqueued() {
                accepted.push(i);
            }
        }
        let drained = q.drain_all();
        prop_assert_eq!(drained, accepted);
    }

    /// Histogram quantile bounds: every quantile is >= that fraction of
    /// samples, and quantile is monotone in q.
    #[test]
    fn histogram_quantile_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples { h.record(s); }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.50);
        let q99 = h.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99);
        // The bucketed p50 upper bound must dominate the true median.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        prop_assert!(q50 >= true_median);
    }

    /// Welford merge is equivalent to sequential accumulation.
    #[test]
    fn welford_merge_associative(xs in proptest::collection::vec(-1e6f64..1e6, 0..200), split in 0usize..200) {
        let split = split.min(xs.len());
        let mut whole = WelfordMean::new();
        for &x in &xs { whole.push(x); }
        let mut left = WelfordMean::new();
        let mut right = WelfordMean::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
        }
    }
}

proptest! {
    /// The timer wheel is observationally equivalent to the binary-heap
    /// event queue: same pushes → same pop sequence (time order with FIFO
    /// tie-breaking), for any tick granularity.
    #[test]
    fn wheel_equals_heap(
        times in proptest::collection::vec(0u64..2_000_000, 1..300),
        tick in prop_oneof![Just(1u64), Just(10u64), Just(1_000u64)],
    ) {
        let mut heap = EventQueue::new();
        let mut wheel = detsim::TimerWheel::new(tick);
        for (i, &t) in times.iter().enumerate() {
            // Quantize to the tick so both structures see identical
            // effective timestamps (the wheel cannot order within a tick
            // except by sequence, which is exactly the heap's tie rule).
            let q = SimTime::from_nanos(t / tick * tick);
            heap.push(q, i);
            wheel.push(q, i);
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Interleaved push/pop stays equivalent (pushes never go backwards
    /// in time past the last pop, as in a DES main loop).
    #[test]
    fn wheel_equals_heap_interleaved(
        script in proptest::collection::vec((any::<bool>(), 0u64..100_000), 1..200),
    ) {
        let mut heap = EventQueue::new();
        let mut wheel = detsim::TimerWheel::new(1);
        let mut clock = 0u64;
        for (i, &(push, dt)) in script.iter().enumerate() {
            if push || heap.is_empty() {
                let t = SimTime::from_nanos(clock + dt);
                heap.push(t, i);
                wheel.push(t, i);
            } else {
                let a = heap.pop();
                let b = wheel.pop();
                prop_assert_eq!(a, b);
                if let Some((t, _)) = a {
                    clock = t.as_nanos();
                }
            }
        }
    }
}
