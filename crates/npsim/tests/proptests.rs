//! Property-based tests on the simulation engine: invariants that must
//! hold for *any* scheduling policy, checked with a randomized (but
//! deterministic, seeded) policy over randomized configurations.

use detsim::SimTime;
use npsim::{Engine, EngineConfig, PacketDesc, RateSpec, Scheduler, SourceConfig, SystemView};
use nptrace::TracePreset;
use nptraffic::ServiceKind;
use proptest::prelude::*;

/// A policy that picks cores pseudo-randomly (xorshift on the flow and a
/// per-instance seed) — valid but adversarially unstructured.
struct ChaosScheduler {
    state: u64,
}

impl ChaosScheduler {
    fn new(seed: u64) -> Self {
        ChaosScheduler { state: seed | 1 }
    }
}

impl Scheduler for ChaosScheduler {
    fn name(&self) -> &str {
        "chaos"
    }
    fn schedule(&mut self, pkt: &PacketDesc, view: &SystemView<'_>) -> usize {
        let mut x = self.state ^ pkt.flow.src_ip as u64 ^ ((pkt.flow.dst_ip as u64) << 32);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x % view.n_cores() as u64) as usize
    }
}

fn run(
    n_cores: usize,
    rate: f64,
    seed: u64,
    chaos_seed: u64,
    duration_us: u64,
) -> npsim::SimReport {
    let cfg = EngineConfig {
        n_cores,
        duration: SimTime::from_micros(duration_us),
        scale: 1.0,
        seed,
        ..EngineConfig::default()
    };
    let sources = vec![SourceConfig {
        service: ServiceKind::IpForward,
        trace: TracePreset::Auckland(1),
        rate: RateSpec::Constant(rate),
    }];
    Engine::new(cfg, &sources, ChaosScheduler::new(chaos_seed)).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation holds for any core count, rate, and policy behaviour.
    #[test]
    fn conservation_under_chaos(
        n_cores in 1usize..12,
        rate in 0.1f64..8.0,
        seed in any::<u64>(),
        chaos in any::<u64>(),
    ) {
        let r = run(n_cores, rate, seed, chaos, 2_000);
        prop_assert_eq!(r.offered, r.dropped + r.processed);
        prop_assert!(r.out_of_order <= r.processed);
        prop_assert!(r.cold_starts <= r.processed);
        prop_assert!(r.migrated_packets <= r.processed);
        prop_assert!(r.migration_events >= r.migrated_packets.min(1).saturating_sub(1));
        prop_assert_eq!(r.core_busy_ns.len(), n_cores);
        for &b in &r.core_busy_ns {
            prop_assert!(b <= r.end_time.as_nanos());
        }
    }

    /// Determinism: identical inputs replay identically even for the
    /// chaotic policy (its own state is seeded too).
    #[test]
    fn determinism_under_chaos(seed in any::<u64>(), chaos in any::<u64>()) {
        let a = run(4, 3.0, seed, chaos, 1_500);
        let b = run(4, 3.0, seed, chaos, 1_500);
        prop_assert_eq!(a.offered, b.offered);
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.out_of_order, b.out_of_order);
        prop_assert_eq!(a.core_busy_ns, b.core_busy_ns);
    }

    /// Monotonicity of capacity: more cores never process fewer packets
    /// under a load-oblivious policy with the same arrival stream.
    #[test]
    fn more_cores_do_not_hurt(seed in any::<u64>()) {
        let small = run(2, 6.0, seed, 99, 2_000);
        let big = run(8, 6.0, seed, 99, 2_000);
        prop_assert_eq!(small.offered, big.offered, "same arrivals");
        prop_assert!(big.processed >= small.processed);
    }

    /// The restoration buffer never breaks conservation and only reduces
    /// measured reordering.
    #[test]
    fn restoration_invariants(seed in any::<u64>(), chaos in any::<u64>()) {
        let cfg_base = EngineConfig {
            n_cores: 4,
            duration: SimTime::from_micros(1_500),
            scale: 1.0,
            seed,
            ..EngineConfig::default()
        };
        let sources = vec![SourceConfig {
            service: ServiceKind::IpForward,
            trace: TracePreset::Auckland(1),
            rate: RateSpec::Constant(5.0),
        }];
        let plain = Engine::new(cfg_base.clone(), &sources, ChaosScheduler::new(chaos)).run();
        let mut cfg = cfg_base;
        cfg.restoration = Some(SimTime::from_micros(200));
        let restored = Engine::new(cfg, &sources, ChaosScheduler::new(chaos)).run();
        prop_assert_eq!(restored.offered, restored.dropped + restored.processed);
        prop_assert_eq!(plain.offered, restored.offered);
        prop_assert_eq!(plain.dropped, restored.dropped);
        prop_assert!(restored.out_of_order <= plain.out_of_order);
    }
}
