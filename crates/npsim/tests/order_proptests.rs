//! Property-based tests for the reordering metric (`npsim::order`).
//!
//! Two properties the paper's evaluation quietly relies on:
//!
//! 1. **Permutation-free streams measure zero.** If every flow's packets
//!    depart in arrival-sequence order — however the flows interleave
//!    with each other, and whatever gaps drops left — the metric must be
//!    exactly zero. Inter-flow interleaving is *not* reordering.
//! 2. **Flow labels carry no information.** Relabeling flows through any
//!    injective map must leave every reported number unchanged: the
//!    metric may depend only on the per-flow sequence structure.

use nphash::{FlowId, FlowInterner};
use npsim::OrderTracker;
use proptest::prelude::*;

/// Replay `(flow_label, seq)` departures and return the tracker. Labels
/// are interned to dense slots exactly as the engine does, so arbitrary
/// u64 labels exercise the same slot-indexed path.
fn replay(departures: &[(u64, u64)]) -> OrderTracker {
    let mut t = OrderTracker::new();
    let mut interner = FlowInterner::new();
    for &(f, s) in departures {
        let slot = interner.intern(FlowId::from_index(f));
        t.record_departure(slot, s);
    }
    t
}

/// Reference O(n²) implementation of the RFC 4737 singleton metric: a
/// departure is out of order iff a same-flow packet with a *higher*
/// sequence departed before it.
fn brute_force_ooo(departures: &[(u64, u64)]) -> u64 {
    let mut count = 0;
    for (i, &(f, s)) in departures.iter().enumerate() {
        let late = departures.iter().take(i).any(|&(pf, ps)| pf == f && ps > s);
        if late {
            count += 1;
        }
    }
    count
}

proptest! {
    /// Any interleaving of per-flow in-order streams (with drop gaps)
    /// measures zero reordering.
    #[test]
    fn permutation_free_stream_is_zero(
        choices in proptest::collection::vec(any::<u64>(), 1..200),
        n_flows in 1u64..8,
    ) {
        // Each element picks which flow departs next; per-flow sequence
        // numbers only ever increase (low bit adds drop gaps).
        let mut next_seq = vec![0u64; n_flows as usize];
        let mut departures = Vec::with_capacity(choices.len());
        for c in &choices {
            let f = c % n_flows;
            let seq = &mut next_seq[f as usize];
            departures.push((f, *seq));
            *seq += 1 + (c & 1); // sometimes skip a seq: a dropped packet
        }
        let t = replay(&departures);
        prop_assert_eq!(t.out_of_order(), 0);
        prop_assert_eq!(t.ooo_fraction(), 0.0);
        prop_assert_eq!(t.departed(), departures.len() as u64);
        prop_assert_eq!(t.extent_histogram().count(), 0);
    }

    /// Relabeling flow IDs through an injective map changes nothing.
    #[test]
    fn metric_invariant_under_flow_relabeling(
        raw in proptest::collection::vec(any::<u64>(), 1..200),
        mul in any::<u64>(),
        shift in any::<u64>(),
    ) {
        // Arbitrary (possibly reordered) departure stream over 6 flows.
        let departures: Vec<(u64, u64)> = raw
            .iter()
            .map(|r| (r % 6, (r >> 3) % 32))
            .collect();
        // Odd multipliers are invertible mod 2^64, so this is injective.
        let odd = mul | 1;
        let relabeled: Vec<(u64, u64)> = departures
            .iter()
            .map(|&(f, s)| (f.wrapping_mul(odd).wrapping_add(shift), s))
            .collect();

        let a = replay(&departures);
        let b = replay(&relabeled);
        prop_assert_eq!(a.departed(), b.departed());
        prop_assert_eq!(a.out_of_order(), b.out_of_order());
        prop_assert_eq!(a.ooo_fraction(), b.ooo_fraction());
        prop_assert_eq!(a.flows_seen(), b.flows_seen());
        prop_assert_eq!(a.extent_histogram().count(), b.extent_histogram().count());
        prop_assert_eq!(a.extent_histogram().max(), b.extent_histogram().max());
        prop_assert_eq!(a.extent_histogram().mean(), b.extent_histogram().mean());
    }

    /// The incremental tracker agrees with the O(n²) definition.
    #[test]
    fn tracker_matches_reference_definition(
        raw in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let departures: Vec<(u64, u64)> = raw
            .iter()
            .map(|r| (r % 4, (r >> 2) % 16))
            .collect();
        let t = replay(&departures);
        prop_assert_eq!(t.out_of_order(), brute_force_ooo(&departures));
    }
}
