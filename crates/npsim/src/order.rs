//! Packet-reordering measurement.
//!
//! A packet departs **out of order** if some packet of the same flow with
//! a *higher* arrival sequence has already departed — the standard
//! reordering definition (cf. RFC 4737 "reordered" singleton metric). We
//! additionally record the *reorder extent* (how many sequence numbers
//! late the packet is), an extension beyond the paper's scalar count.
//!
//! The tracker is slot-indexed: flows are identified by their dense
//! [`FlowSlot`], so recording a departure is one array access — no hash
//! probe on the departure path.

use detsim::Histogram;
use nphash::FlowSlot;

/// Tracks per-flow departure order, indexed by [`FlowSlot`].
#[derive(Debug, Default)]
pub struct OrderTracker {
    /// Per slot: `0` = no departure seen yet; otherwise the highest
    /// departed `flow_seq` **plus one** (so the vector's zero-fill is the
    /// "never seen" state and growth is a plain resize).
    max_departed_plus_one: Vec<u64>,
    flows: usize,
    departed: u64,
    out_of_order: u64,
    extent: Histogram,
}

impl OrderTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a departure of packet `flow_seq` of the flow in `slot`.
    /// Returns `true` if the departure is out of order.
    pub fn record_departure(&mut self, slot: FlowSlot, flow_seq: u64) -> bool {
        self.record_departure_extent(slot, flow_seq).is_some()
    }

    /// Like [`OrderTracker::record_departure`], but returns the reorder
    /// extent (how many sequence numbers late the packet was); `None`
    /// means the departure was in order.
    pub fn record_departure_extent(&mut self, slot: FlowSlot, flow_seq: u64) -> Option<u64> {
        self.departed += 1;
        let i = slot.index();
        if i >= self.max_departed_plus_one.len() {
            self.max_departed_plus_one.resize(i + 1, 0);
        }
        let Some(entry) = self.max_departed_plus_one.get_mut(i) else {
            // Unreachable: just resized to cover `i`.
            return None;
        };
        if *entry == 0 {
            // First departure of the flow can still be "late" only if
            // earlier-seq packets were dropped — drops are not
            // reorderings, so it is in order by definition.
            *entry = flow_seq + 1;
            self.flows += 1;
            return None;
        }
        let max = *entry - 1;
        if flow_seq < max {
            self.out_of_order += 1;
            let extent = max - flow_seq;
            self.extent.record(extent);
            Some(extent)
        } else {
            *entry = flow_seq + 1;
            None
        }
    }

    /// Start the cache fill for `slot`'s entry ahead of its departure
    /// (a read-only touch; entries not yet grown are simply skipped).
    #[inline]
    pub fn prefetch(&self, slot: FlowSlot) {
        if let Some(entry) = self.max_departed_plus_one.get(slot.index()) {
            crate::mem::prefetch_read(entry);
        }
    }

    /// Total departures recorded.
    pub fn departed(&self) -> u64 {
        self.departed
    }

    /// Out-of-order departures.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Fraction of departures that were out of order.
    pub fn ooo_fraction(&self) -> f64 {
        if self.departed == 0 {
            0.0
        } else {
            self.out_of_order as f64 / self.departed as f64
        }
    }

    /// Reorder-extent distribution (sequence-number lateness).
    pub fn extent_histogram(&self) -> &Histogram {
        &self.extent
    }

    /// Number of distinct flows that have departed packets.
    pub fn flows_seen(&self) -> usize {
        self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> FlowSlot {
        FlowSlot::new(i)
    }

    #[test]
    fn in_order_flow_is_clean() {
        let mut t = OrderTracker::new();
        for seq in 0..10 {
            assert!(!t.record_departure(s(1), seq));
        }
        assert_eq!(t.out_of_order(), 0);
        assert_eq!(t.departed(), 10);
        assert_eq!(t.ooo_fraction(), 0.0);
    }

    #[test]
    fn late_packet_is_ooo() {
        let mut t = OrderTracker::new();
        t.record_departure(s(1), 0);
        t.record_departure(s(1), 2); // 1 still in flight
        assert!(t.record_departure(s(1), 1)); // late
        assert_eq!(t.out_of_order(), 1);
        assert_eq!(t.extent_histogram().count(), 1);
        assert_eq!(t.extent_histogram().max(), 1);
    }

    #[test]
    fn flows_are_independent() {
        let mut t = OrderTracker::new();
        t.record_departure(s(1), 5);
        assert!(!t.record_departure(s(2), 0), "other flows unaffected");
        assert_eq!(t.flows_seen(), 2);
    }

    #[test]
    fn gaps_from_drops_are_not_reordering() {
        let mut t = OrderTracker::new();
        assert!(!t.record_departure(s(1), 0));
        // seq 1 was dropped upstream; 2 departing next is in order.
        assert!(!t.record_departure(s(1), 2));
        assert_eq!(t.out_of_order(), 0);
    }

    #[test]
    fn equal_seq_not_counted() {
        // Defensive: duplicate sequence (should not happen) is not OOO.
        let mut t = OrderTracker::new();
        t.record_departure(s(1), 3);
        assert!(!t.record_departure(s(1), 3));
    }

    #[test]
    fn extent_measures_lateness() {
        let mut t = OrderTracker::new();
        t.record_departure(s(1), 10);
        t.record_departure(s(1), 4);
        assert_eq!(t.extent_histogram().max(), 6);
    }

    #[test]
    fn extent_variant_reports_lateness_inline() {
        let mut t = OrderTracker::new();
        assert_eq!(t.record_departure_extent(s(1), 10), None);
        assert_eq!(t.record_departure_extent(s(1), 4), Some(6));
        assert_eq!(t.record_departure_extent(s(1), 11), None);
    }

    #[test]
    fn sparse_slots_grow_on_demand() {
        let mut t = OrderTracker::new();
        assert!(!t.record_departure(s(1000), 0));
        assert!(!t.record_departure(s(0), 7));
        assert_eq!(t.flows_seen(), 2);
    }
}
