//! The detsim event clock: the engine's virtual-time transport,
//! extracted so the staged pipeline reads as stages + clock rather than
//! stages wired to a specific queue. The scalar run loop pushes/pops
//! [`Ev`]s through an [`EventSchedule`]; the batched loop bypasses it;
//! the npexec thread-per-core backend replaces it with real threads and
//! an arrival plan (see [`plan`](super::plan)).

use detsim::{EventQueue, SimTime, TimerWheel};

use super::EventBackend;

#[derive(Debug, Clone, Copy)]
pub(super) enum Ev {
    Arrival(usize),
    /// A core's service completion. Carries the core's finish
    /// generation at arming time: a crash bumps the generation, so the
    /// dead core's in-flight finish event is recognized as stale and
    /// discarded instead of completing a dropped packet.
    Finish(usize, u32),
    RateUpdate,
    /// The fault-plan entry at this index fires.
    Fault(usize),
    /// A transient stall on this core ends.
    StallEnd(usize),
}

/// The engine's event queue, behind the [`EventBackend`] knob. Both
/// variants share the `(time, seq)` total order, so swapping them cannot
/// change a run's result — only its wall-clock speed.
#[derive(Debug)]
pub(super) enum EventSchedule {
    Heap(EventQueue<Ev>),
    Wheel(Box<TimerWheel<Ev>>),
}

impl EventSchedule {
    /// Pick the backend; the wheel's tick granularity adapts to the time
    /// scale so that a slot spans roughly one packet service time
    /// (deterministic: derived from the configuration only).
    pub(super) fn new(backend: EventBackend, scale: f64) -> Self {
        match backend {
            EventBackend::Heap => EventSchedule::Heap(EventQueue::with_capacity(1024)),
            EventBackend::Wheel => {
                // Power of two so the wheel's time→tick conversion is a
                // shift, not a division; roughly one tick per paper-scale
                // inter-arrival at the bench rates.
                let tick_ns = ((scale * 50.0) as u64).clamp(32, 2048).next_power_of_two();
                EventSchedule::Wheel(Box::new(TimerWheel::new(tick_ns)))
            }
        }
    }

    #[inline]
    pub(super) fn push(&mut self, at: SimTime, ev: Ev) {
        match self {
            EventSchedule::Heap(q) => {
                q.push(at, ev);
            }
            EventSchedule::Wheel(w) => w.push(at, ev),
        }
    }

    #[inline]
    pub(super) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            EventSchedule::Heap(q) => q.pop(),
            EventSchedule::Wheel(w) => w.pop(),
        }
    }
}
