//! Per-stage cycle accounting for the batched hot path.
//!
//! The batched run loop is generic over a [`CycleSink`]; the default
//! sink is `()`, whose spans are compile-time dead (`ACTIVE = false`
//! plus `#[inline]` empty bodies), so ordinary runs pay literally zero —
//! the same monomorphization trick the probe bus uses. Passing a
//! [`CycleAccounting`] instead (via `Engine::run_with_cycles`) times
//! every stage span and buckets it by [`Stage`].
//!
//! npsim forbids `unsafe`, so there is no `_rdtsc` here: spans are
//! measured with `std::time::Instant` and "cycles" are **nanoseconds of
//! host wall time**. The name is kept because the per-stage *ratios*
//! are what the accounting is for — which stage dominates a burst — and
//! those are frequency-independent. The wall clock never feeds back
//! into the simulation: same seed + config still replays byte-identical
//! whether accounting is on or off (pinned by a unit test below).

use std::fmt::Write as _;

/// A pipeline stage of the batched engine, as accounted by the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Arrival lookahead refills: gap + header draws, burst buffering.
    Ingest,
    /// Admission + scheduling: interning, classification, `choose_core`,
    /// flow-table updates.
    Dispatch,
    /// Queue mutation and the Eq. 3 delay model: enqueue, service
    /// start/finish, busy-time accounting.
    Service,
    /// Departure bookkeeping: order tracking, restoration, probes.
    Record,
    /// The merge scan picking the next event across sources and cores.
    Merge,
}

/// All accounted stages, in display order.
pub const STAGES: [Stage; 5] = [
    Stage::Ingest,
    Stage::Dispatch,
    Stage::Service,
    Stage::Record,
    Stage::Merge,
];

impl Stage {
    /// Stable lowercase name (CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Dispatch => "dispatch",
            Stage::Service => "service",
            Stage::Record => "record",
            Stage::Merge => "merge",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::Ingest => 0,
            Stage::Dispatch => 1,
            Stage::Service => 2,
            Stage::Record => 3,
            Stage::Merge => 4,
        }
    }
}

/// Where the batched loop reports its stage spans.
///
/// `ACTIVE = false` (the `()` impl) compiles every span call to
/// nothing; the loop is monomorphized separately per sink, so the
/// accounting-off hot path carries no branch, no counter, no clock.
pub trait CycleSink {
    /// Whether spans are recorded at all. Span calls are additionally
    /// guarded by `if C::ACTIVE` at the call sites so the disabled case
    /// is branch-free after constant folding.
    const ACTIVE: bool;

    /// Start a span; returns an opaque timestamp token.
    fn span_start(&mut self) -> u64;

    /// End a span started at `start`, attributing it to `stage` and
    /// crediting `packets` packets of work to it.
    fn span_end(&mut self, stage: Stage, start: u64, packets: u64);
}

/// The no-op sink: accounting off, zero cost.
impl CycleSink for () {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn span_start(&mut self) -> u64 {
        0
    }

    #[inline(always)]
    fn span_end(&mut self, _stage: Stage, _start: u64, _packets: u64) {}
}

/// Accumulated accounting for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCycles {
    /// Number of recorded spans.
    pub spans: u64,
    /// Packets of work credited across those spans.
    pub packets: u64,
    /// Total span time. Nanoseconds of host wall time standing in for
    /// cycles (npsim forbids `unsafe`, hence no raw TSC reads).
    pub cycles: u64,
}

impl StageCycles {
    /// Mean cost per packet (0 when no packets were credited).
    pub fn cycles_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.cycles as f64 / self.packets as f64
        }
    }
}

/// The live accounting sink: an [`std::time::Instant`] epoch plus one
/// [`StageCycles`] bucket per stage.
#[derive(Debug)]
pub struct CycleAccounting {
    // The wall clock here measures the *host*, never the simulation:
    // nothing derived from it reaches sim state, so replay determinism
    // is untouched (asserted by `accounting_does_not_change_the_report`).
    // npcheck: allow(wall-clock) — host-side profiling epoch only.
    epoch: std::time::Instant,
    stages: [StageCycles; STAGES.len()],
}

impl CycleAccounting {
    /// A fresh sink with all buckets zero.
    pub fn new() -> Self {
        CycleAccounting {
            // npcheck: allow(wall-clock) — host-side profiling epoch only.
            epoch: std::time::Instant::now(),
            stages: [StageCycles::default(); STAGES.len()],
        }
    }

    /// Freeze into a report.
    pub fn finish(self) -> CycleReport {
        CycleReport {
            stages: self.stages,
        }
    }
}

impl Default for CycleAccounting {
    fn default() -> Self {
        CycleAccounting::new()
    }
}

impl CycleSink for CycleAccounting {
    const ACTIVE: bool = true;

    #[inline]
    fn span_start(&mut self) -> u64 {
        // npcheck: allow(wall-clock) — host-side profiling read only.
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn span_end(&mut self, stage: Stage, start: u64, packets: u64) {
        // npcheck: allow(wall-clock) — host-side profiling read only.
        let end = self.epoch.elapsed().as_nanos() as u64;
        if let Some(bucket) = self.stages.get_mut(stage.index()) {
            bucket.spans += 1;
            bucket.packets += packets;
            bucket.cycles += end.saturating_sub(start);
        }
    }
}

/// Per-stage cycle totals of one batched run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleReport {
    stages: [StageCycles; STAGES.len()],
}

impl CycleReport {
    /// An all-zero report (what scalar-mode fallbacks return).
    pub fn empty() -> Self {
        CycleReport {
            stages: [StageCycles::default(); STAGES.len()],
        }
    }

    /// The bucket for `stage`.
    pub fn stage(&self, stage: Stage) -> StageCycles {
        self.stages.get(stage.index()).copied().unwrap_or_default()
    }

    /// Total recorded time across all stages (ns of host wall time).
    pub fn total_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.cycles).sum()
    }

    /// True when nothing was recorded (scalar fallback or a zero-event
    /// run).
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.spans == 0)
    }

    /// Render as CSV: `stage,spans,packets,cycles,cycles_per_packet`,
    /// one row per stage in pipeline order.
    pub fn to_csv(&self) -> String {
        // npcheck: allow(blocking-hot-path) — report rendering after the run
        let mut out = String::from("stage,spans,packets,cycles,cycles_per_packet\n");
        for stage in STAGES {
            let s = self.stage(stage);
            // Writing to a String cannot fail; ignore the fmt::Result.
            let _ = writeln!(
                out,
                "{},{},{},{},{:.2}",
                stage.name(),
                s.spans,
                s.packets,
                s.cycles,
                s.cycles_per_packet()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_inactive() {
        const { assert!(!<() as CycleSink>::ACTIVE) };
        let mut s = ();
        let t = s.span_start();
        s.span_end(Stage::Merge, t, 10);
    }

    #[test]
    fn accounting_accumulates_spans() {
        let mut acc = CycleAccounting::new();
        let t = acc.span_start();
        acc.span_end(Stage::Ingest, t, 32);
        let t = acc.span_start();
        acc.span_end(Stage::Ingest, t, 16);
        let t = acc.span_start();
        acc.span_end(Stage::Merge, t, 1);
        let report = acc.finish();
        let ingest = report.stage(Stage::Ingest);
        assert_eq!(ingest.spans, 2);
        assert_eq!(ingest.packets, 48);
        assert_eq!(report.stage(Stage::Merge).spans, 1);
        assert_eq!(report.stage(Stage::Service).spans, 0);
        assert!(!report.is_empty());
    }

    #[test]
    fn csv_has_header_and_all_stages() {
        let report = CycleReport::empty();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("stage,spans,packets,cycles,cycles_per_packet")
        );
        let rest: Vec<&str> = lines.collect();
        assert_eq!(rest.len(), STAGES.len());
        for (row, stage) in rest.iter().zip(STAGES) {
            assert!(row.starts_with(stage.name()), "row {row}");
        }
    }

    #[test]
    fn cycles_per_packet_handles_zero() {
        assert_eq!(StageCycles::default().cycles_per_packet(), 0.0);
        let s = StageCycles {
            spans: 1,
            packets: 4,
            cycles: 100,
        };
        assert!((s.cycles_per_packet() - 25.0).abs() < 1e-9);
    }
}
