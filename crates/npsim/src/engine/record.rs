//! Record stage: the observability bus terminal.
//!
//! Owns the order tracker, the optional egress restoration buffer, the
//! always-on [`ReportProbe`] (the report *is* a bus consumer, statically
//! dispatched), and the attached dynamic probes. Every event the
//! pipeline publishes lands here: the report probe folds it into
//! [`SimReport`] counters, and — only when `P::ACTIVE` — the dynamic
//! probes see it too.

use crate::event::SimEvent;
use crate::packet::PacketDesc;
use crate::probe::{ProbeHost, ReportProbe};
use crate::report::SimReport;
use crate::restore::RestorationBuffer;
use crate::OrderTracker;
use detsim::SimTime;
use nphash::FlowSlot;

#[derive(Debug)]
pub(super) struct RecordStage<P: ProbeHost> {
    order: OrderTracker,
    restoration: Option<RestorationBuffer>,
    report: ReportProbe,
    probes: P,
}

impl<P: ProbeHost> RecordStage<P> {
    pub(super) fn new(
        report: ReportProbe,
        restoration: Option<RestorationBuffer>,
        probes: P,
    ) -> Self {
        RecordStage {
            order: OrderTracker::new(),
            restoration,
            report,
            probes,
        }
    }

    /// Publish one event: fold it into the report (statically), then
    /// hand it to the dynamic probes (compiled away when `!P::ACTIVE`).
    #[inline]
    pub(super) fn publish(&mut self, now: SimTime, ev: &SimEvent) {
        self.report.observe(now, ev);
        if P::ACTIVE {
            self.probes.deliver(now, ev);
        }
    }

    /// Count one run-loop event dispatch (`SimReport::events`).
    #[inline]
    pub(super) fn note_loop_event(&mut self) {
        self.report.report.events += 1;
    }

    /// Record a packet leaving the system (after restoration, if any):
    /// publishes `Departure` and, for late packets, `ReorderDetected`.
    fn emit(&mut self, pkt: PacketDesc, now: SimTime) {
        let extent = self.order.record_departure_extent(pkt.slot, pkt.flow_seq);
        self.publish(
            now,
            &SimEvent::Departure {
                id: pkt.id,
                slot: pkt.slot,
                service: pkt.service,
                latency_ns: (now - pkt.arrival).as_nanos(),
                out_of_order: extent.is_some(),
            },
        );
        if P::ACTIVE {
            if let Some(extent) = extent {
                self.publish(
                    now,
                    &SimEvent::ReorderDetected {
                        slot: pkt.slot,
                        flow_seq: pkt.flow_seq,
                        extent,
                    },
                );
            }
        }
    }

    /// A packet finished service: emit it directly, or pass it through
    /// the restoration buffer and emit whatever the buffer releases.
    pub(super) fn departure(&mut self, pkt: PacketDesc, now: SimTime) {
        match self.restoration.as_mut() {
            None => self.emit(pkt, now),
            Some(buf) => {
                let mut released = buf.on_departure(pkt, now);
                released.extend(buf.flush_timeouts(now));
                for p in released {
                    self.emit(p, now);
                }
            }
        }
    }

    /// Start the order tracker's cache fill for `slot` (batched mode:
    /// issued at `ServiceStart`, ~one service time before the
    /// departure that reads the entry).
    #[inline]
    pub(super) fn prefetch_departure(&self, slot: FlowSlot) {
        self.order.prefetch(slot);
    }

    /// A packet was dropped: the frame manager knows this sequence
    /// number will never depart; tell the restoration buffer not to
    /// wait for it.
    pub(super) fn note_drop_gap(&mut self, slot: FlowSlot, flow_seq: u64, now: SimTime) {
        if let Some(buf) = self.restoration.as_mut() {
            for released in buf.note_gap(slot, flow_seq, now) {
                self.emit(released, now);
            }
        }
    }

    /// Stamp the run's end time.
    pub(super) fn set_end_time(&mut self, end: SimTime) {
        self.report.report.end_time = end;
    }

    /// Anything still waiting in the restoration buffer departs at the
    /// final instant; its statistics move into the report.
    pub(super) fn drain_restoration(&mut self, horizon: SimTime) {
        if let Some(mut buf) = self.restoration.take() {
            for p in buf.drain_all(horizon) {
                self.emit(p, horizon);
            }
            self.report.report.restoration = Some(buf.into_stats());
        }
    }

    /// Finalize loop-level report fields the event stream cannot see,
    /// signal `on_finish` to the probes, and hand both back.
    pub(super) fn finalize(
        mut self,
        core_reallocations: u64,
        core_busy_ns: Vec<u64>,
        faults: Option<crate::fault::FaultStats>,
    ) -> (SimReport, P) {
        self.report.report.out_of_order = self.order.out_of_order();
        self.report.report.core_reallocations = core_reallocations;
        self.report.report.core_busy_ns = core_busy_ns;
        self.report.report.faults = faults;
        if P::ACTIVE {
            let end = self.report.report.end_time;
            self.probes.finish(end);
        }
        (self.report.into_report(), self.probes)
    }

    /// The report under construction (invariant checking).
    #[cfg(feature = "invariants")]
    pub(super) fn report_ref(&self) -> &SimReport {
        &self.report.report
    }

    /// Restoration-buffer occupancy (invariant checking).
    #[cfg(feature = "invariants")]
    pub(super) fn restoration_occupancy(&self) -> u64 {
        self.restoration
            .as_ref()
            .map_or(0, |b| b.occupancy() as u64)
    }
}
