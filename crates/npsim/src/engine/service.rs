//! Service stage: per-core bounded queues and packet execution.
//!
//! Owns the core array (queue, packet in service, cache state, busy
//! time, fault health) and the Eq. 3 delay model. Enqueue outcomes and
//! service starts are returned to the orchestrator, which publishes the
//! corresponding bus events and schedules the finish timer.
//!
//! Fault support: each core carries an `up` flag, a service-duration
//! multiplier (throttle), a stall latch, and a finish generation. A
//! crash drains the core's backlog (returned to the orchestrator for
//! drop accounting), refunds the unearned remainder of its in-service
//! busy credit, and bumps the generation so the stale finish timer is
//! discarded. Under [`DropPolicy::Backpressure`] each core also owns a
//! staging buffer that refills the main queue as service completes.

use crate::fault::DropPolicy;
use crate::packet::PacketDesc;
use crate::sched::QueueInfo;
use detsim::{BoundedQueue, PushOutcome, SimTime};
use nphash::FlowSlot;
use nptraffic::{DelayModel, ServiceKind};

#[derive(Debug)]
struct Core {
    queue: BoundedQueue<PacketDesc>,
    /// Backpressure staging buffer (unused — always empty — under the
    /// other drop policies).
    staging: BoundedQueue<PacketDesc>,
    current: Option<PacketDesc>,
    /// When the in-service packet completes; meaningful only while
    /// `current.is_some()` (used to refund busy credit on a crash).
    finish_at: SimTime,
    last_service: Option<ServiceKind>,
    idle_since: Option<SimTime>,
    last_congested: SimTime,
    busy_ns: u64,
    /// Alive? `false` between a fault-plan crash and the matching heal.
    up: bool,
    /// Transient stall: the core finishes its current packet but starts
    /// no new service until the stall-end event clears this.
    stalled: bool,
    /// Service-duration multiplier (throttle); 1.0 at full speed.
    speed: f64,
    /// Incremented on every crash; finish events carry the generation
    /// they were armed under, so a crash invalidates them.
    generation: u32,
}

/// A packet entering service: what the orchestrator needs to publish
/// `ServiceStart` and arm the finish timer.
#[derive(Debug, Clone, Copy)]
pub(super) struct Started {
    pub service: ServiceKind,
    /// Flow of the packet entering service (batched mode prefetches the
    /// order tracker's line for it ahead of the departure).
    pub slot: FlowSlot,
    pub cold: bool,
    pub migrated: bool,
    pub duration: SimTime,
}

/// What happened to an arriving packet at its target queue.
#[derive(Debug, Clone, Copy)]
pub(super) enum EnqueueOutcome {
    /// Admitted to the main queue; payload = occupancy after the push.
    Enqueued(usize),
    /// The arrival was dropped (full queue under drop-tail, or full
    /// queue *and* full staging under backpressure).
    Dropped,
    /// Drop-head: the oldest queued packet was evicted and the arrival
    /// admitted; payload = the evicted packet and the occupancy after.
    HeadDropped { evicted: PacketDesc, len: usize },
    /// Backpressure: the arrival was staged behind a full queue;
    /// payload = total backlog (queue + staging) after.
    Staged(usize),
}

#[derive(Debug)]
pub(super) struct ServiceStage {
    cores: Vec<Core>,
    delay: DelayModel,
    congestion_watermark: usize,
    policy: DropPolicy,
}

impl ServiceStage {
    pub(super) fn new(
        n_cores: usize,
        queue_capacity: usize,
        delay: DelayModel,
        congestion_watermark: usize,
        policy: DropPolicy,
    ) -> Self {
        let cores = (0..n_cores)
            .map(|_| Core {
                queue: BoundedQueue::new(queue_capacity),
                staging: BoundedQueue::new(queue_capacity),
                current: None,
                finish_at: SimTime::ZERO,
                last_service: None,
                idle_since: Some(SimTime::ZERO),
                last_congested: SimTime::ZERO,
                busy_ns: 0,
                up: true,
                stalled: false,
                speed: 1.0,
                generation: 0,
            })
            .collect();
        ServiceStage {
            cores,
            delay,
            congestion_watermark,
            policy,
        }
    }

    pub(super) fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Try to enqueue `pkt` on `target` under the configured drop
    /// policy, maintaining the congestion timestamps exactly as the
    /// monolithic engine did (a drop or a queue at/above the watermark
    /// stamps `last_congested`).
    pub(super) fn enqueue(
        &mut self,
        target: usize,
        pkt: PacketDesc,
        now: SimTime,
    ) -> EnqueueOutcome {
        let policy = self.policy;
        // `target` < n_cores is asserted at dispatch, so the lookup is
        // total.
        let Some(c) = self.cores.get_mut(target) else {
            return EnqueueOutcome::Dropped;
        };
        if !c.up {
            // The orchestrator redirects arrivals away from dead cores;
            // reaching one here means no live core was left.
            c.last_congested = now;
            return EnqueueOutcome::Dropped;
        }
        let outcome = match policy {
            DropPolicy::DropTail => match c.queue.push(pkt) {
                PushOutcome::Enqueued(len) => EnqueueOutcome::Enqueued(len),
                PushOutcome::Dropped => EnqueueOutcome::Dropped,
            },
            DropPolicy::DropHead => match c.queue.push(pkt) {
                PushOutcome::Enqueued(len) => EnqueueOutcome::Enqueued(len),
                PushOutcome::Dropped => match c.queue.pop() {
                    Some(evicted) => match c.queue.push(pkt) {
                        PushOutcome::Enqueued(len) => EnqueueOutcome::HeadDropped { evicted, len },
                        // Unreachable (we just made room), but stay
                        // panic-free: account the arrival as dropped.
                        PushOutcome::Dropped => EnqueueOutcome::Dropped,
                    },
                    None => EnqueueOutcome::Dropped,
                },
            },
            DropPolicy::Backpressure => {
                // FIFO across queue + staging: once anything is staged,
                // arrivals must join staging or they would overtake it.
                if c.staging.is_empty() {
                    match c.queue.push(pkt) {
                        PushOutcome::Enqueued(len) => EnqueueOutcome::Enqueued(len),
                        PushOutcome::Dropped => match c.staging.push(pkt) {
                            PushOutcome::Enqueued(n) => EnqueueOutcome::Staged(c.queue.len() + n),
                            PushOutcome::Dropped => EnqueueOutcome::Dropped,
                        },
                    }
                } else {
                    match c.staging.push(pkt) {
                        PushOutcome::Enqueued(n) => EnqueueOutcome::Staged(c.queue.len() + n),
                        PushOutcome::Dropped => EnqueueOutcome::Dropped,
                    }
                }
            }
        };
        match outcome {
            EnqueueOutcome::Dropped
            | EnqueueOutcome::HeadDropped { .. }
            | EnqueueOutcome::Staged(_) => c.last_congested = now,
            EnqueueOutcome::Enqueued(len) => {
                if len >= self.congestion_watermark {
                    c.last_congested = now;
                }
            }
        }
        outcome
    }

    /// Pull the next queued packet into service on `core`, if the core
    /// is free and work is waiting. Returns the service parameters so
    /// the orchestrator can arm the finish timer; `None` if the core is
    /// busy, down, stalled, or its queue is empty (the latter marks the
    /// idle start).
    pub(super) fn start_processing(&mut self, core: usize, now: SimTime) -> Option<Started> {
        // Core IDs originate from our own event queue / scheduler-checked
        // dispatch; an out-of-range ID is a bug upstream, not a reason to
        // panic mid-run.
        let Some(slot) = self.cores.get_mut(core) else {
            debug_assert!(false, "start_processing on unknown core {core}");
            return None;
        };
        if slot.current.is_some() || !slot.up || slot.stalled {
            return None;
        }
        let Some(pkt) = slot.queue.pop() else {
            if slot.idle_since.is_none() {
                slot.idle_since = Some(now);
            }
            return None;
        };
        // Backpressure: the pop made room — promote the oldest staged
        // packet so the queue refills in FIFO order.
        if let Some(staged) = slot.staging.pop() {
            let _ = slot.queue.push(staged);
        }
        let cold = slot.last_service != Some(pkt.service);
        let d_us = self
            .delay
            .processing_delay_us(pkt.service, pkt.size, pkt.migrated, cold);
        // The SCR sync surcharge was stamped at dispatch (already scaled;
        // state retrieval is fabric time, so the core-speed throttle does
        // not apply). Zero for every non-SCR packet: adding it is the
        // cost model's only touch on this path.
        let d = SimTime::from_micros_f64(d_us * slot.speed)
            + SimTime::from_nanos(u64::from(pkt.sync_debt_ns));
        slot.busy_ns += d.as_nanos();
        slot.last_service = Some(pkt.service);
        let started = Started {
            service: pkt.service,
            slot: pkt.slot,
            cold,
            migrated: pkt.migrated,
            duration: d,
        };
        slot.current = Some(pkt);
        slot.finish_at = now + d;
        slot.idle_since = None;
        Some(started)
    }

    /// Take the packet in service on `core` (a finish event fired).
    pub(super) fn take_current(&mut self, core: usize) -> Option<PacketDesc> {
        self.cores.get_mut(core).and_then(|c| c.current.take())
    }

    /// The finish generation of `core` (finish events armed under an
    /// older generation are stale — the core crashed in between).
    #[inline]
    pub(super) fn generation(&self, core: usize) -> u32 {
        self.cores.get(core).map_or(0, |c| c.generation)
    }

    /// Whether `core` is alive.
    #[inline]
    pub(super) fn is_up(&self, core: usize) -> bool {
        self.cores.get(core).is_some_and(|c| c.up)
    }

    /// The live core with the smallest backlog (queue + staging, ties
    /// to the lowest index) — the orchestrator's redirect target when a
    /// scheduler picks a dead core. `None` when every core is down.
    pub(super) fn shortest_up_queue(&self) -> Option<usize> {
        let mut best = None;
        let mut best_len = usize::MAX;
        for (c, slot) in self.cores.iter().enumerate() {
            let len = slot.queue.len() + slot.staging.len();
            if slot.up && len < best_len {
                best = Some(c);
                best_len = len;
            }
        }
        best
    }

    /// Kill `core`: mark it down, bump its finish generation (stale
    /// finish timers are discarded), refund the unearned remainder of
    /// its in-service busy credit, and return every packet it was
    /// holding — in-service first, then queue, then staging, in FIFO
    /// order — for the orchestrator to account as drops. Idempotent: a
    /// second crash of a down core returns nothing.
    pub(super) fn crash(&mut self, core: usize, now: SimTime) -> Vec<PacketDesc> {
        let Some(slot) = self.cores.get_mut(core) else {
            return Vec::new();
        };
        if !slot.up {
            return Vec::new();
        }
        slot.up = false;
        slot.stalled = false;
        slot.speed = 1.0;
        slot.generation = slot.generation.wrapping_add(1);
        slot.idle_since = None;
        slot.last_service = None;
        let mut lost = Vec::new();
        if let Some(pkt) = slot.current.take() {
            // The full duration was credited at start; refund what the
            // core will no longer perform.
            let remaining = (slot.finish_at - now).as_nanos();
            slot.busy_ns = slot.busy_ns.saturating_sub(remaining);
            lost.push(pkt);
        }
        while let Some(pkt) = slot.queue.pop() {
            lost.push(pkt);
        }
        while let Some(pkt) = slot.staging.pop() {
            lost.push(pkt);
        }
        lost
    }

    /// Revive `core` after a crash: it rejoins idle, at full speed,
    /// with a cold instruction cache. Returns `false` (no-op) if the
    /// core was already up.
    pub(super) fn heal(&mut self, core: usize, now: SimTime) -> bool {
        let Some(slot) = self.cores.get_mut(core) else {
            return false;
        };
        if slot.up {
            return false;
        }
        slot.up = true;
        slot.idle_since = Some(now);
        slot.speed = 1.0;
        slot.stalled = false;
        true
    }

    /// Set `core`'s service-duration multiplier (throttle; 1.0 restores
    /// full speed). Ignored on a dead core (a heal resets speed).
    pub(super) fn set_speed(&mut self, core: usize, factor: f64) {
        if let Some(slot) = self.cores.get_mut(core) {
            if slot.up && factor > 0.0 {
                slot.speed = factor;
            }
        }
    }

    /// Latch a transient stall on `core`: its current packet completes,
    /// but no new service starts until [`ServiceStage::resume`].
    pub(super) fn stall(&mut self, core: usize) {
        if let Some(slot) = self.cores.get_mut(core) {
            if slot.up {
                slot.stalled = true;
            }
        }
    }

    /// Clear a transient stall on `core`.
    pub(super) fn resume(&mut self, core: usize) {
        if let Some(slot) = self.cores.get_mut(core) {
            slot.stalled = false;
        }
    }

    /// A fresh [`QueueInfo`] snapshot of `core`'s state. `len` counts
    /// the full backlog (queue + backpressure staging).
    #[inline]
    pub(super) fn snapshot(&self, core: usize) -> Option<QueueInfo> {
        self.cores.get(core).map(|c| QueueInfo {
            len: c.queue.len() + c.staging.len(),
            capacity: c.queue.capacity(),
            busy: c.current.is_some(),
            idle_since: c.idle_since,
            last_congested: c.last_congested,
            up: c.up,
        })
    }

    /// Per-core busy nanoseconds, for the final report.
    pub(super) fn busy_ns(&self) -> Vec<u64> {
        // npcheck: allow(blocking-hot-path) — end-of-run report, not on the per-packet path
        self.cores.iter().map(|c| c.busy_ns).collect()
    }

    /// Packets waiting across all queues and staging buffers (invariant
    /// checking).
    #[cfg(feature = "invariants")]
    pub(super) fn queued_total(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| (c.queue.len() + c.staging.len()) as u64)
            .sum()
    }

    /// Packets currently in service (invariant checking).
    #[cfg(feature = "invariants")]
    pub(super) fn in_service_total(&self) -> u64 {
        self.cores.iter().filter(|c| c.current.is_some()).count() as u64
    }
}
