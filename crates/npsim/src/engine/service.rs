//! Service stage: per-core bounded queues and packet execution.
//!
//! Owns the core array (queue, packet in service, cache state, busy
//! time) and the Eq. 3 delay model. Enqueue outcomes and service starts
//! are returned to the orchestrator, which publishes the corresponding
//! bus events and schedules the finish timer.

use crate::packet::PacketDesc;
use crate::sched::QueueInfo;
use detsim::{BoundedQueue, PushOutcome, SimTime};
use nptraffic::{DelayModel, ServiceKind};

#[derive(Debug)]
struct Core {
    queue: BoundedQueue<PacketDesc>,
    current: Option<PacketDesc>,
    last_service: Option<ServiceKind>,
    idle_since: Option<SimTime>,
    last_congested: SimTime,
    busy_ns: u64,
}

/// A packet entering service: what the orchestrator needs to publish
/// `ServiceStart` and arm the finish timer.
#[derive(Debug, Clone, Copy)]
pub(super) struct Started {
    pub service: ServiceKind,
    pub cold: bool,
    pub migrated: bool,
    pub duration: SimTime,
}

#[derive(Debug)]
pub(super) struct ServiceStage {
    cores: Vec<Core>,
    delay: DelayModel,
    congestion_watermark: usize,
}

impl ServiceStage {
    pub(super) fn new(
        n_cores: usize,
        queue_capacity: usize,
        delay: DelayModel,
        congestion_watermark: usize,
    ) -> Self {
        let cores = (0..n_cores)
            .map(|_| Core {
                queue: BoundedQueue::new(queue_capacity),
                current: None,
                last_service: None,
                idle_since: Some(SimTime::ZERO),
                last_congested: SimTime::ZERO,
                busy_ns: 0,
            })
            .collect();
        ServiceStage {
            cores,
            delay,
            congestion_watermark,
        }
    }

    pub(super) fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Try to enqueue `pkt` on `target`, maintaining the congestion
    /// timestamps exactly as the monolithic engine did (a drop or a
    /// queue at/above the watermark stamps `last_congested`).
    pub(super) fn enqueue(&mut self, target: usize, pkt: PacketDesc, now: SimTime) -> PushOutcome {
        // `target` < n_cores is asserted at dispatch, so the lookup is
        // total.
        let outcome = self
            .cores
            .get_mut(target)
            .map(|c| c.queue.push(pkt))
            .unwrap_or(PushOutcome::Dropped);
        match outcome {
            PushOutcome::Dropped => {
                if let Some(c) = self.cores.get_mut(target) {
                    c.last_congested = now;
                }
            }
            PushOutcome::Enqueued(len) => {
                if len >= self.congestion_watermark {
                    if let Some(c) = self.cores.get_mut(target) {
                        c.last_congested = now;
                    }
                }
            }
        }
        outcome
    }

    /// Pull the next queued packet into service on `core`, if the core
    /// is free and work is waiting. Returns the service parameters so
    /// the orchestrator can arm the finish timer; `None` if the core is
    /// busy or its queue is empty (the latter marks the idle start).
    pub(super) fn start_processing(&mut self, core: usize, now: SimTime) -> Option<Started> {
        // Core IDs originate from our own event queue / scheduler-checked
        // dispatch; an out-of-range ID is a bug upstream, not a reason to
        // panic mid-run.
        let Some(slot) = self.cores.get_mut(core) else {
            debug_assert!(false, "start_processing on unknown core {core}");
            return None;
        };
        if slot.current.is_some() {
            return None;
        }
        let Some(pkt) = slot.queue.pop() else {
            if slot.idle_since.is_none() {
                slot.idle_since = Some(now);
            }
            return None;
        };
        let cold = slot.last_service != Some(pkt.service);
        let d_us = self
            .delay
            .processing_delay_us(pkt.service, pkt.size, pkt.migrated, cold);
        let d = SimTime::from_micros_f64(d_us);
        slot.busy_ns += d.as_nanos();
        slot.last_service = Some(pkt.service);
        let started = Started {
            service: pkt.service,
            cold,
            migrated: pkt.migrated,
            duration: d,
        };
        slot.current = Some(pkt);
        slot.idle_since = None;
        Some(started)
    }

    /// Take the packet in service on `core` (a finish event fired).
    pub(super) fn take_current(&mut self, core: usize) -> Option<PacketDesc> {
        self.cores.get_mut(core).and_then(|c| c.current.take())
    }

    /// A fresh [`QueueInfo`] snapshot of `core`'s state.
    #[inline]
    pub(super) fn snapshot(&self, core: usize) -> Option<QueueInfo> {
        self.cores.get(core).map(|c| QueueInfo {
            len: c.queue.len(),
            capacity: c.queue.capacity(),
            busy: c.current.is_some(),
            idle_since: c.idle_since,
            last_congested: c.last_congested,
        })
    }

    /// Per-core busy nanoseconds, for the final report.
    pub(super) fn busy_ns(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.busy_ns).collect()
    }

    /// Packets waiting across all queues (invariant checking).
    #[cfg(feature = "invariants")]
    pub(super) fn queued_total(&self) -> u64 {
        self.cores.iter().map(|c| c.queue.len() as u64).sum()
    }

    /// Packets currently in service (invariant checking).
    #[cfg(feature = "invariants")]
    pub(super) fn in_service_total(&self) -> u64 {
        self.cores.iter().filter(|c| c.current.is_some()).count() as u64
    }
}
