//! Arrival-plan extraction: the offered-traffic stream of a run,
//! materialized up front for execution backends that do not drive the
//! detsim event clock (the npexec thread-per-core runtime).
//!
//! [`ArrivalPlan::from_config`] replays exactly the ingest-side slice of
//! the scalar run loop — the same [`IngestStage`] construction, the same
//! priming order, the same `(time, seq)` pop order over arrivals and
//! rate-update ticks, the same admission and flow-sequence draws — while
//! skipping everything downstream of dispatch (no cores, no queues, no
//! service). Because per-packet RNG streams are consumed in an identical
//! order, the resulting packet stream (ids, flows, slots, sizes, arrival
//! times, per-flow sequence numbers, slow-path diversions) is **the**
//! stream a fault-free detsim run of the same configuration offers — a
//! contract pinned by the test at the bottom of this file and relied on
//! by the detsim-vs-npexec validation experiment.

use super::ingest::{Admission, IngestStage};
use super::{EngineConfig, SourceConfig};
use detsim::{EventQueue, SeedSequence, SimTime};
use nphash::{FlowId, FlowSlot};
use nptraffic::ServiceKind;

/// One offered packet, fully classified, with its arrival instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledPacket {
    /// Arrival instant (virtual time of the source draw).
    pub at: SimTime,
    /// Index of the source that emitted it.
    pub src: u32,
    /// Globally unique packet id, assigned in admission order.
    pub id: u64,
    /// The packet's 5-tuple flow identity.
    pub flow: FlowId,
    /// Dense arena slot of the flow.
    pub slot: FlowSlot,
    /// Service the packet requests.
    pub service: ServiceKind,
    /// Frame size in bytes.
    pub size: u16,
    /// Per-flow arrival sequence number (0-based), the reorder witness.
    pub flow_seq: u64,
}

/// The complete offered-traffic stream of one configuration + seed.
#[derive(Debug, Clone)]
pub struct ArrivalPlan {
    /// Fast-path packets in arrival order (ties in source order, exactly
    /// as the scalar event queue breaks them).
    pub packets: Vec<ScheduledPacket>,
    /// Packets the frame-manager classifier diverted to the slow path.
    pub slow_path: u64,
    /// Number of distinct flows interned by the stream.
    pub flow_count: usize,
    /// Number of traffic sources.
    pub n_sources: usize,
}

#[derive(Debug, Clone, Copy)]
enum PlanEv {
    Arrival(usize),
    RateUpdate,
}

impl ArrivalPlan {
    /// Extract the offered stream of `cfg` + `sources`.
    ///
    /// Fault plans are not replayed (floods perturb arrival rates, so a
    /// faulted configuration has no backend-neutral plan); callers gate
    /// on an empty [`FaultPlan`](crate::FaultPlan) before using the
    /// plan.
    ///
    /// # Panics
    /// Panics on an empty source list or a non-positive scale, exactly
    /// as the engine constructor does.
    pub fn from_config(cfg: &EngineConfig, sources: &[SourceConfig]) -> Self {
        assert!(!sources.is_empty(), "need at least one traffic source");
        assert!(cfg.scale > 0.0, "scale must be positive");
        let seq = SeedSequence::new(cfg.seed);
        let mut ingest = IngestStage::new(
            &seq,
            sources,
            cfg.period_compression,
            cfg.scale,
            cfg.control_plane_fraction,
        );
        ingest.prestage_all(cfg.prestage);

        let mut events: EventQueue<PlanEv> = EventQueue::with_capacity(1024);
        // Priming order mirrors Engine::run_scalar: per-source first
        // gaps in source order, then the rate-update ticker.
        for (i, gap) in ingest.prime_gaps() {
            if gap <= cfg.duration {
                events.push(gap, PlanEv::Arrival(i));
            }
        }
        if cfg.rate_update_interval <= cfg.duration {
            events.push(cfg.rate_update_interval, PlanEv::RateUpdate);
        }

        // Per-slot arrival sequence counters — the plan-side mirror of
        // DispatchStage::next_seq.
        let mut seqs: Vec<u64> = Vec::new();
        let mut packets: Vec<ScheduledPacket> = Vec::new();
        let mut slow_path = 0u64;
        while let Some((t, ev)) = events.pop() {
            match ev {
                PlanEv::Arrival(src) => {
                    match ingest.admit(src) {
                        // Trace exhausted: the source ends, like the
                        // scalar loop's early return.
                        Admission::Missing => continue,
                        Admission::SlowPath { .. } => slow_path += 1,
                        Admission::FastPath(h) => {
                            if seqs.len() < ingest.flow_count() {
                                seqs.resize(ingest.flow_count(), 0);
                            }
                            let flow_seq = match seqs.get_mut(h.slot.index()) {
                                Some(s) => {
                                    let v = *s;
                                    *s += 1;
                                    v
                                }
                                // Unreachable: slots are dense below
                                // flow_count by the interner contract.
                                None => 0,
                            };
                            packets.push(ScheduledPacket {
                                at: t,
                                src: src as u32,
                                id: h.id,
                                flow: h.flow,
                                slot: h.slot,
                                service: h.service,
                                size: h.size,
                                flow_seq,
                            });
                        }
                    }
                    if let Some(gap) = ingest.next_gap(src) {
                        let next = t + gap;
                        if next <= cfg.duration {
                            events.push(next, PlanEv::Arrival(src));
                        }
                    }
                }
                PlanEv::RateUpdate => {
                    ingest.refresh_rates(t);
                    let next = t + cfg.rate_update_interval;
                    if next <= cfg.duration {
                        events.push(next, PlanEv::RateUpdate);
                    }
                }
            }
        }
        ArrivalPlan {
            packets,
            slow_path,
            flow_count: ingest.flow_count(),
            n_sources: ingest.n_sources(),
        }
    }

    /// Number of fast-path packets offered.
    pub fn offered(&self) -> u64 {
        self.packets.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::JoinShortestQueue;
    use crate::Engine;
    use crate::RateSpec;
    use nptrace::TracePreset;

    fn cfg(duration_ms: u64) -> EngineConfig {
        EngineConfig {
            n_cores: 4,
            duration: SimTime::from_millis(duration_ms),
            scale: 1.0,
            seed: 42,
            ..EngineConfig::default()
        }
    }

    fn sources() -> Vec<SourceConfig> {
        vec![
            SourceConfig {
                service: ServiceKind::IpForward,
                trace: TracePreset::Auckland(1),
                rate: RateSpec::Constant(2.0),
            },
            SourceConfig {
                service: ServiceKind::VpnOut,
                trace: TracePreset::Caida(1),
                rate: RateSpec::Constant(1.0),
            },
        ]
    }

    #[test]
    fn plan_matches_detsim_offered_stream() {
        let plan = ArrivalPlan::from_config(&cfg(20), &sources());
        let report = Engine::new(cfg(20), &sources(), JoinShortestQueue::new()).run();
        assert_eq!(plan.offered(), report.offered, "same offered count");
        assert_eq!(plan.slow_path, report.slow_path, "same slow-path count");
        assert!(plan.offered() > 10_000, "plan is non-trivial");
    }

    #[test]
    fn plan_replays_byte_identically() {
        let a = ArrivalPlan::from_config(&cfg(10), &sources());
        let b = ArrivalPlan::from_config(&cfg(10), &sources());
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.slow_path, b.slow_path);
    }

    #[test]
    fn packet_ids_unique_and_ordered_per_flow() {
        let plan = ArrivalPlan::from_config(&cfg(10), &sources());
        let mut ids: Vec<u64> = plan.packets.iter().map(|p| p.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "packet ids are unique");
        // flow_seq is dense and increasing per slot, and arrival times
        // are monotone across the stream.
        let mut next_seq = vec![0u64; plan.flow_count];
        let mut last_at = SimTime::ZERO;
        for p in &plan.packets {
            assert!(p.at >= last_at, "arrival order is time order");
            last_at = p.at;
            assert_eq!(p.flow_seq, next_seq[p.slot.index()]);
            next_seq[p.slot.index()] += 1;
        }
    }

    #[test]
    fn control_plane_fraction_diverts_in_plan_too() {
        let mut c = cfg(20);
        c.control_plane_fraction = 0.1;
        let plan = ArrivalPlan::from_config(&c, &sources());
        let report = Engine::new(c, &sources(), JoinShortestQueue::new()).run();
        assert_eq!(plan.slow_path, report.slow_path);
        assert_eq!(plan.offered(), report.offered);
        assert!(plan.slow_path > 0);
    }
}
