//! The simulation engine (Fig. 6): packet generator → scheduler → per-core
//! queues → processing → departure.
//!
//! Semantics, matching §IV:
//!
//! * Each core has a bounded input queue (32 descriptors); a packet
//!   dispatched to a full queue is **dropped**.
//! * Processing delay follows Eq. 3: `T_proc` (per service and size) plus
//!   the 0.8 µs flow-migration penalty when the flow's previous packet
//!   used a different core, plus the 10 µs cold-cache penalty when the
//!   core's previous packet belonged to a different service.
//! * Reordering is measured at departure against per-flow arrival
//!   sequence numbers.
//! * Arrivals follow per-source Poisson processes whose rate is refreshed
//!   from the source's rate law every `rate_update_interval`.
//!
//! After the horizon, arrivals stop and the queues drain, so every offered
//! packet is finally either dropped or processed — an invariant the tests
//! assert.
//!
//! # Pipeline architecture
//!
//! The engine is a thin orchestrator over four stages:
//!
//! * **ingest** — traffic sources, arrival-gap draws, the flow interner,
//!   and frame-manager admission (slow-path classifier, packet IDs).
//! * **dispatch** — the scheduling policy, per-flow state (sequence
//!   numbers, last core), and the incrementally maintained
//!   [`QueueInfo`](crate::QueueInfo) view.
//! * **service** — per-core bounded queues, the Eq. 3 delay model,
//!   busy-time accounting.
//! * **record** — the observability-bus terminal: the order tracker, the
//!   optional restoration buffer, the always-on report probe, and any
//!   attached dynamic [`Probe`](crate::Probe)s.
//!
//! Stages communicate through typed [`SimEvent`]s published to the
//! record stage. With no probes attached (`P = ()`) the publishing
//! compiles down to the direct counter updates of the pre-pipeline
//! engine — the zero-probe fast path — and runs produce byte-identical
//! [`SimReport`]s either way (pinned by the golden-report fixture test).

mod batch;
mod clock;
mod cycles;
mod dispatch;
mod ingest;
pub(crate) mod plan;
mod record;
mod service;

pub use cycles::{CycleAccounting, CycleReport, CycleSink, Stage, StageCycles, STAGES};
pub use plan::{ArrivalPlan, ScheduledPacket};

use crate::event::SimEvent;
use crate::fault::{DropPolicy, FaultAction, FaultPlan, FaultStats};
use crate::packet::PacketDesc;
use crate::probe::{ProbeHost, ProbeStack, ReportProbe};
use crate::report::{SimReport, SyncStats};
use crate::restore::RestorationBuffer;
use crate::sched::{RepairOutcome, SchedEvent, Scheduler};
use crate::source::SourceConfig;
use detsim::{SeedSequence, SimTime};

use clock::{Ev, EventSchedule};
use dispatch::DispatchStage;
use ingest::{Admission, IngestStage};
use record::RecordStage;
use service::{EnqueueOutcome, ServiceStage};

/// Which event-queue implementation drives the run loop.
///
/// Both structures implement the same deterministic contract — earliest
/// time first, FIFO among equal `(time, seq)` — so the two backends
/// produce **byte-identical reports** for the same configuration and
/// seed (pinned by the workspace `backend_equivalence` property test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventBackend {
    /// `detsim::EventQueue` — the O(log n) binary heap. The default:
    /// the engine's pending-event set is tiny (≈ one finish event per
    /// busy core plus one arrival per source), and at that size a
    /// contiguous heap measurably outruns the wheel's slot machinery
    /// (see DESIGN.md "Hot path & perf baseline" for the numbers).
    #[default]
    Heap,
    /// `detsim::TimerWheel` — O(1)-amortized hierarchical timing wheel.
    /// Wins when the pending set is large (thousands of timers); kept a
    /// config knob away, with a byte-identical-report equivalence test,
    /// so event-heavy scenarios can flip it with zero semantic risk.
    Wheel,
}

/// How the run loop moves packets through the pipeline.
///
/// Both modes implement the same `(time, seq)` total order and produce
/// **byte-identical reports** for the same configuration and seed
/// (pinned by the workspace `batch_equivalence` property test): the
/// batched loop pre-draws per-source arrival bursts from their private
/// RNG streams and replaces the event heap with a bounded merge scan,
/// but performs every shared-state mutation at the same simulated
/// instant, in the same order, as the scalar loop. See
/// DESIGN.md "Batched execution".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One event at a time through the central event queue — the
    /// reference implementation, and the automatic fallback whenever
    /// fault machinery or the timer-wheel backend is configured.
    Scalar,
    /// Burst-oriented execution (the default): arrivals pre-drawn up to
    /// `burst` per source, heap replaced by a merge over per-source
    /// heads and per-core finish slots.
    Batched {
        /// Per-source lookahead depth, clamped to `1..=32`.
        burst: u8,
    },
}

impl Default for ExecutionMode {
    fn default() -> Self {
        ExecutionMode::Batched { burst: 32 }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of data-plane cores (paper: 16).
    pub n_cores: usize,
    /// Per-core input-queue capacity in descriptors (paper: 32).
    pub queue_capacity: usize,
    /// Simulated horizon; arrivals stop here and queues drain.
    pub duration: SimTime,
    /// Rate/time scale factor `F` (see DESIGN.md). 1.0 = paper-exact.
    pub scale: f64,
    /// Root seed; all internal streams derive from it.
    pub seed: u64,
    /// How often each source re-samples its rate law.
    pub rate_update_interval: SimTime,
    /// Queue depth at which a core counts as "congested" for the
    /// surplus-core eligibility signal (`QueueInfo::last_congested`).
    pub congestion_watermark: usize,
    /// Divide Holt-Winters seasonal periods by this factor so short runs
    /// still see seasonal variation (1.0 = periods as published).
    pub period_compression: f64,
    /// Penalty model; its `scale` field is overridden by `scale` above.
    pub delay: nptraffic::DelayModel,
    /// Enable an egress order-restoration buffer with this timeout (the
    /// §VI alternative to order preservation). `None` = packets depart
    /// the instant processing finishes (the paper's model).
    pub restoration: Option<SimTime>,
    /// Fraction of arriving packets the frame-manager classifier marks
    /// as *control plane* (§II / Fig. 1): they take the slow path through
    /// the general-purpose cores and never reach the data-plane
    /// scheduler. The paper studies data-plane scheduling, so 0 by
    /// default.
    pub control_plane_fraction: f64,
    /// Event-queue implementation behind the run loop (default: the
    /// binary heap; the timer wheel is retained for event-heavy
    /// scenarios and cross-checking).
    pub event_backend: EventBackend,
    /// Deterministic fault script (crashes, heals, throttles, stalls,
    /// floods), delivered through the event queue. Empty by default:
    /// the fault machinery stays dormant and runs are byte-identical to
    /// the fault-free engine.
    pub faults: FaultPlan,
    /// What to do with an arrival at a full per-core queue (default:
    /// drop-tail, the paper's model).
    pub drop_policy: DropPolicy,
    /// Run-loop execution strategy (default: batched bursts of 32).
    /// Semantics are identical either way; this knob only trades
    /// wall-clock speed and exists so benchmarks and equivalence tests
    /// can pin the scalar reference loop.
    pub execution: ExecutionMode,
    /// Pre-draw this many inter-arrival gaps and trace records per
    /// Constant-rate source at construction time (0 = off, the default).
    /// Reports are byte-identical either way; benchmarks use it to
    /// measure the engine rather than the synthetic traffic model.
    /// Ignored for Holt-Winters sources (their rate noise interleaves
    /// with gap draws on the same stream).
    pub prestage: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_cores: 16,
            queue_capacity: 32,
            duration: SimTime::from_secs(1),
            scale: 50.0,
            seed: 1,
            rate_update_interval: SimTime::from_millis(100),
            congestion_watermark: 2,
            period_compression: 1.0,
            delay: nptraffic::DelayModel::default(),
            restoration: None,
            control_plane_fraction: 0.0,
            event_backend: EventBackend::default(),
            faults: FaultPlan::new(),
            drop_policy: DropPolicy::default(),
            execution: ExecutionMode::default(),
            prestage: 0,
        }
    }
}

/// The simulation engine, generic over the scheduling policy `S` and the
/// probe host `P` (default `()`: no probes, the zero-cost fast path).
pub struct Engine<S: Scheduler, P: ProbeHost = ()> {
    cfg: EngineConfig,
    ingest: IngestStage,
    dispatch: DispatchStage<S>,
    service: ServiceStage,
    record: RecordStage<P>,
    events: EventSchedule,
    /// Reusable drain buffer for the scheduler's [`SchedEvent`] feed
    /// (taken/restored around the drain to avoid aliasing the stages).
    sched_ev_buf: Vec<SchedEvent>,
    /// Whether any fault machinery is configured (non-empty plan or a
    /// non-default drop policy). Guards the per-packet dead-core check
    /// so the fault-free hot path is untouched.
    faults_enabled: bool,
    /// Fault-path counters; folded into the report when
    /// `faults_enabled`.
    fstats: FaultStats,
    /// Whether the SCR sync-cost model runs: the policy opted in
    /// (`Scheduler::sync_policy`) *and* the delay model prices it
    /// (`sync_cost_us > 0`). Guards every replica-set touch, so non-SCR
    /// runs — and SCR runs priced at zero — pay nothing.
    sync_enabled: bool,
    /// Per-stale-replica surcharge in nanoseconds (pre-scaled), cached
    /// from the delay model.
    sync_cost_ns: u64,
    /// The policy's consolidation period (`0` = never).
    sync_every: u32,
    /// SCR accounting; folded into the report when `sync_enabled`.
    sync_stats: SyncStats,
}

impl<S: Scheduler, P: ProbeHost> std::fmt::Debug for Engine<S, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("scheduler", &self.dispatch.name())
            .field("n_cores", &self.service.n_cores())
            .field("n_sources", &self.ingest.n_sources())
            .field("next_packet_id", &self.ingest.next_packet_id())
            .finish_non_exhaustive()
    }
}

impl<S: Scheduler> Engine<S> {
    /// Build an engine over `sources`, scheduled by `scheduler`, with no
    /// probes attached (the zero-probe fast path).
    ///
    /// # Panics
    /// Panics on a zero-core configuration or an empty source list.
    pub fn new(cfg: EngineConfig, sources: &[SourceConfig], scheduler: S) -> Self {
        Engine::with_probes(cfg, sources, scheduler, ())
    }
}

impl<S: Scheduler> Engine<S, ProbeStack> {
    /// Build an engine with a dynamic probe stack attached to the
    /// observability bus. Probes see every published [`SimEvent`] and
    /// are handed back by [`Engine::run_full`].
    pub fn with_probe_stack(
        cfg: EngineConfig,
        sources: &[SourceConfig],
        scheduler: S,
        probes: ProbeStack,
    ) -> Self {
        Engine::with_probes(cfg, sources, scheduler, probes)
    }
}

impl<S: Scheduler, P: ProbeHost> Engine<S, P> {
    /// Build an engine with an arbitrary probe host.
    ///
    /// # Panics
    /// Panics on a zero-core configuration or an empty source list.
    pub fn with_probes(
        cfg: EngineConfig,
        sources: &[SourceConfig],
        mut scheduler: S,
        probes: P,
    ) -> Self {
        assert!(cfg.n_cores > 0, "need at least one core");
        assert!(!sources.is_empty(), "need at least one traffic source");
        assert!(cfg.scale > 0.0, "scale must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.control_plane_fraction),
            "control-plane fraction must be in [0, 1)"
        );
        if let Err(e) = cfg.faults.validate(cfg.n_cores, sources.len()) {
            panic!("invalid fault plan: {e}");
        }
        let seq = SeedSequence::new(cfg.seed);
        let mut delay = cfg.delay;
        delay.scale = cfg.scale;
        let mut ingest = IngestStage::new(
            &seq,
            sources,
            cfg.period_compression,
            cfg.scale,
            cfg.control_plane_fraction,
        );
        ingest.prestage_all(cfg.prestage);
        let service = ServiceStage::new(
            cfg.n_cores,
            cfg.queue_capacity,
            delay,
            cfg.congestion_watermark,
            cfg.drop_policy,
        );
        let infos = (0..cfg.n_cores)
            .filter_map(|i| service.snapshot(i))
            .collect();
        let report = ReportProbe::new(scheduler.name(), cfg.duration, cfg.scale);
        let restoration = cfg.restoration.map(RestorationBuffer::new);
        // Policies with a park/wake side channel only buffer events when
        // someone is listening.
        scheduler.set_event_feed(P::ACTIVE);
        let faults_enabled = !cfg.faults.is_empty() || cfg.drop_policy != DropPolicy::DropTail;
        // The SCR sync model engages only when the policy asks for it
        // AND the delay model prices it; priced at zero, an SCR run is
        // byte-identical to the same decisions without the model.
        let sync_policy = scheduler.sync_policy();
        let sync_enabled = sync_policy.is_some() && delay.sync_cost_us > 0.0;
        let sync_cost_ns = SimTime::from_micros_f64(delay.sync_delay_us(1)).as_nanos();
        let sync_every = sync_policy.map_or(0, |p| p.sync_every);
        let mut dispatch = DispatchStage::new(scheduler, infos);
        if sync_enabled {
            dispatch.enable_sync();
        }
        Engine {
            ingest,
            dispatch,
            service,
            record: RecordStage::new(report, restoration, probes),
            events: EventSchedule::new(cfg.event_backend, cfg.scale),
            sched_ev_buf: Vec::new(),
            faults_enabled,
            fstats: FaultStats::default(),
            sync_enabled,
            sync_cost_ns,
            sync_every,
            sync_stats: SyncStats::default(),
            cfg,
        }
    }

    /// Republish the scheduler's buffered park/wake transitions on the
    /// bus. Only reached when probes are attached.
    fn drain_sched_events(&mut self, now: SimTime) {
        let mut buf = std::mem::take(&mut self.sched_ev_buf);
        self.dispatch.drain_events_into(&mut buf);
        for ev in buf.drain(..) {
            let sim_ev = match ev {
                SchedEvent::CoreParked { core } => SimEvent::CoreParked { core },
                SchedEvent::CoreUnparked { core } => SimEvent::CoreUnparked { core },
            };
            self.record.publish(now, &sim_ev);
        }
        self.sched_ev_buf = buf;
    }

    /// Resync core `i`'s scheduler-view entry after mutating it. Every
    /// event touches exactly one core, so this keeps the view coherent at
    /// one entry write per event instead of an `n_cores` rebuild.
    #[inline]
    fn sync_info(&mut self, i: usize) {
        if let Some(info) = self.service.snapshot(i) {
            self.dispatch.set_info(i, info);
        }
    }

    /// SCR sync charge, half one of two: stamp the stale-replica
    /// service-time surcharge on `pkt` for a dispatch to `target`.
    /// Read-only on the replica set — a packet the queue then
    /// drop-tails never ran on the core, so it must not dirty the
    /// flow's replica state or show up in the sync totals; those happen
    /// in [`Engine::commit_sync`] once the packet is accepted. Both
    /// halves are called from the identical points of both run loops,
    /// so reports stay byte-identical across them. Only called when
    /// `sync_enabled`.
    #[inline]
    fn stamp_sync(&mut self, pkt: &mut PacketDesc, target: usize) {
        let stale = self.dispatch.sync_stale(pkt.slot, target);
        if stale > 0 {
            let debt = self.sync_cost_ns.saturating_mul(u64::from(stale));
            pkt.sync_debt_ns = u32::try_from(debt).unwrap_or(u32::MAX);
        }
    }

    /// SCR sync charge, half two: the packet made it into a queue —
    /// record the replica touch (and any consolidation) and account the
    /// surcharge stamped by [`Engine::stamp_sync`].
    #[inline]
    fn commit_sync(&mut self, slot: nphash::FlowSlot, target: usize, debt_ns: u32) {
        let (_, consolidated) = self.dispatch.sync_touch(slot, target, self.sync_every);
        if debt_ns > 0 {
            self.sync_stats.sync_packets += 1;
            self.sync_stats.sync_extra_ns += u64::from(debt_ns);
        }
        if consolidated {
            self.sync_stats.consolidations += 1;
        }
    }

    /// Pull the next queued packet into service on `core`, publishing
    /// `ServiceStart` and arming the finish timer.
    fn start_processing(&mut self, core: usize, now: SimTime) {
        if let Some(started) = self.service.start_processing(core, now) {
            let generation = self.service.generation(core);
            self.events
                .push(now + started.duration, Ev::Finish(core, generation));
            self.record.publish(
                now,
                &SimEvent::ServiceStart {
                    core,
                    service: started.service,
                    cold: started.cold,
                    migrated: started.migrated,
                    duration: started.duration,
                },
            );
        }
    }

    /// Schedule the next arrival from `src` if it lands in the horizon.
    fn schedule_next_arrival(&mut self, src: usize, now: SimTime) {
        let Some(gap) = self.ingest.next_gap(src) else {
            return;
        };
        let next = now + gap;
        if next <= self.cfg.duration {
            self.events.push(next, Ev::Arrival(src));
        }
    }

    fn on_arrival(&mut self, src: usize, now: SimTime) {
        let header = match self.ingest.admit(src) {
            Admission::Missing => return,
            Admission::SlowPath { service } => {
                self.record
                    .publish(now, &SimEvent::DivertedSlowPath { service });
                self.schedule_next_arrival(src, now);
                return;
            }
            Admission::FastPath(h) => h,
        };
        self.dispatch.grow_flows(self.ingest.flow_count());
        let flow_seq = self.dispatch.next_seq(header.slot);
        let mut pkt = PacketDesc {
            id: header.id,
            flow: header.flow,
            slot: header.slot,
            service: header.service,
            size: header.size,
            arrival: now,
            flow_seq,
            migrated: false,
            sync_debt_ns: 0,
        };
        self.record.publish(
            now,
            &SimEvent::PacketArrived {
                id: pkt.id,
                slot: pkt.slot,
                service: pkt.service,
                size: pkt.size,
            },
        );

        // Ask the policy for a target core, then republish any park/wake
        // transitions the decision triggered.
        let mut target = self.dispatch.choose_core(&pkt, now, self.cfg.n_cores);
        if P::ACTIVE {
            self.drain_sched_events(now);
        }

        // Degradation path: a policy that did not (or could not) repair
        // after a crash may still pick the dead core; redirect the
        // arrival to the least-backlogged live core, or drop it when
        // none is left. Guarded by `faults_enabled` so the fault-free
        // hot path pays nothing.
        if self.faults_enabled && !self.service.is_up(target) {
            match self.service.shortest_up_queue() {
                Some(alt) => {
                    self.fstats.redirects += 1;
                    target = alt;
                }
                None => {
                    self.fstats.fault_drops += 1;
                    self.record.publish(
                        now,
                        &SimEvent::Dropped {
                            id: pkt.id,
                            slot: pkt.slot,
                            service: pkt.service,
                            core: target,
                        },
                    );
                    self.record.note_drop_gap(pkt.slot, pkt.flow_seq, now);
                    self.sync_info(target);
                    self.schedule_next_arrival(src, now);
                    return;
                }
            }
        }

        // SCR sync model: charge for every other core holding the
        // flow's state since its last consolidation. Guarded like the
        // fault path, so non-SCR runs pay nothing here. The replica
        // touch itself commits below, only if the queue accepts.
        if self.sync_enabled {
            self.stamp_sync(&mut pkt, target);
        }

        let prev_core = self.dispatch.last_core(pkt.slot);
        let migrated = matches!(prev_core, Some(c) if c != target);
        pkt.migrated = migrated;
        let outcome = self.service.enqueue(target, pkt, now);
        if let EnqueueOutcome::HeadDropped { evicted, .. } = outcome {
            // Drop-head: the eviction is accounted before the arrival's
            // own dispatch events, preserving causal order on the bus.
            self.fstats.head_drops += 1;
            self.record.publish(
                now,
                &SimEvent::Dropped {
                    id: evicted.id,
                    slot: evicted.slot,
                    service: evicted.service,
                    core: target,
                },
            );
            self.dispatch.on_drop(&evicted, target);
            self.record
                .note_drop_gap(evicted.slot, evicted.flow_seq, now);
        }
        match outcome {
            EnqueueOutcome::Dropped => {
                self.record.publish(
                    now,
                    &SimEvent::Dropped {
                        id: pkt.id,
                        slot: pkt.slot,
                        service: pkt.service,
                        core: target,
                    },
                );
                self.dispatch.on_drop(&pkt, target);
                self.record.note_drop_gap(pkt.slot, pkt.flow_seq, now);
            }
            EnqueueOutcome::Enqueued(len)
            | EnqueueOutcome::HeadDropped { len, .. }
            | EnqueueOutcome::Staged(len) => {
                if let EnqueueOutcome::Staged(_) = outcome {
                    self.fstats.backpressured += 1;
                }
                if self.sync_enabled {
                    self.commit_sync(pkt.slot, target, pkt.sync_debt_ns);
                }
                if P::ACTIVE {
                    self.record.publish(
                        now,
                        &SimEvent::Dispatched {
                            id: pkt.id,
                            slot: pkt.slot,
                            service: pkt.service,
                            core: target,
                            queue_len: len,
                            migrated,
                        },
                    );
                }
                if migrated {
                    if let Some(from) = prev_core {
                        self.record.publish(
                            now,
                            &SimEvent::Migration {
                                slot: pkt.slot,
                                from,
                                to: target,
                            },
                        );
                    }
                }
                self.dispatch.set_last_core(pkt.slot, target);
                self.start_processing(target, now);
            }
        }
        // The only core this arrival touched; bring its view entry up to
        // date for the next schedule() call.
        self.sync_info(target);

        // Schedule the next arrival from this source, if still within the
        // horizon.
        self.schedule_next_arrival(src, now);
    }

    fn on_finish(&mut self, core: usize, generation: u32, now: SimTime) {
        // A crash between arming and firing bumps the core's finish
        // generation: the packet this event was armed for has already
        // been accounted as a fault drop, so the stale event is simply
        // discarded.
        if self.faults_enabled && generation != self.service.generation(core) {
            return;
        }
        // A finish event always carries the packet placed by
        // start_processing; a missing one means the event queue and core
        // state disagree — flag it in debug, skip it in release.
        let Some(pkt) = self.service.take_current(core) else {
            debug_assert!(
                false,
                "finish event without packet in service on core {core}"
            );
            return;
        };
        if P::ACTIVE {
            self.record.publish(
                now,
                &SimEvent::ServiceEnd {
                    core,
                    service: pkt.service,
                },
            );
        }
        self.record.departure(pkt, now);
        self.start_processing(core, now);
        self.sync_info(core);
    }

    /// Apply the fault-plan entry at `idx`.
    fn on_fault(&mut self, idx: usize, now: SimTime) {
        let Some(&(_, action)) = self.cfg.faults.get(idx) else {
            debug_assert!(false, "fault event for unknown plan entry {idx}");
            return;
        };
        self.fstats.injected += 1;
        match action {
            FaultAction::Crash { core } => {
                if !self.service.is_up(core) {
                    return; // already down: nothing to kill
                }
                let lost = self.service.crash(core, now);
                self.fstats.crashes += 1;
                for pkt in lost {
                    // Crash losses are real drops for conservation and
                    // reorder-gap purposes, but not congestion feedback
                    // (`on_drop`): the queue was not full, the core died.
                    self.fstats.fault_drops += 1;
                    self.record.publish(
                        now,
                        &SimEvent::Dropped {
                            id: pkt.id,
                            slot: pkt.slot,
                            service: pkt.service,
                            core,
                        },
                    );
                    self.record.note_drop_gap(pkt.slot, pkt.flow_seq, now);
                }
                self.record.publish(now, &SimEvent::CoreCrashed { core });
                match self.dispatch.on_core_down(core) {
                    RepairOutcome::Repaired => self.fstats.repairs += 1,
                    RepairOutcome::Unrepaired => self.fstats.unrepaired += 1,
                }
                self.sync_info(core);
            }
            FaultAction::Heal { core } => {
                if !self.service.heal(core, now) {
                    return; // already up: nothing to revive
                }
                self.fstats.heals += 1;
                self.record.publish(now, &SimEvent::CoreHealed { core });
                match self.dispatch.on_core_up(core) {
                    RepairOutcome::Repaired => self.fstats.repairs += 1,
                    RepairOutcome::Unrepaired => self.fstats.unrepaired += 1,
                }
                self.start_processing(core, now);
                self.sync_info(core);
            }
            FaultAction::Throttle { core, factor } => {
                self.service.set_speed(core, factor);
            }
            FaultAction::Stall { core, duration } => {
                if self.service.is_up(core) {
                    self.service.stall(core);
                    self.events.push(now + duration, Ev::StallEnd(core));
                }
            }
            FaultAction::Flood { source, factor } => {
                self.ingest.set_flood(source, factor);
            }
            FaultAction::FloodEnd { source } => {
                self.ingest.set_flood(source, 1.0);
            }
        }
    }

    /// A transient stall ended: resume service on `core`.
    fn on_stall_end(&mut self, core: usize, now: SimTime) {
        self.service.resume(core);
        self.start_processing(core, now);
        self.sync_info(core);
    }

    fn on_rate_update(&mut self, now: SimTime) {
        self.ingest.refresh_rates(now);
        if P::ACTIVE {
            self.record.publish(now, &SimEvent::EpochTick);
        }
        let next = now + self.cfg.rate_update_interval;
        if next <= self.cfg.duration {
            self.events.push(next, Ev::RateUpdate);
        }
    }

    /// Runtime invariant checks, compiled in with `--features invariants`
    /// (debug builds of the `invariants` feature; zero cost otherwise).
    ///
    /// Checked at every event dispatch:
    /// 1. **Packet conservation** — every offered packet is either
    ///    processed, dropped, queued, in service, or waiting in the
    ///    restoration buffer: `offered == processed + dropped + in_flight`.
    /// 2. **Monotone virtual time** — the event clock never runs
    ///    backwards.
    #[cfg(feature = "invariants")]
    fn check_invariants(&self, now: SimTime, previous: SimTime) {
        assert!(
            now >= previous,
            "virtual time ran backwards: {previous:?} -> {now:?}"
        );
        let queued = self.service.queued_total();
        let in_service = self.service.in_service_total();
        let buffered = self.record.restoration_occupancy();
        let report = self.record.report_ref();
        let accounted = report.processed + report.dropped + queued + in_service + buffered;
        assert_eq!(
            report.offered, accounted,
            "packet conservation violated at t={now:?}: offered {} != processed {} + dropped {} \
             + queued {queued} + in-service {in_service} + restoration-buffered {buffered}",
            report.offered, report.processed, report.dropped
        );
        // 3. **View coherence** — the incrementally maintained scheduler
        //    view matches a from-scratch rebuild of the core state.
        for (i, info) in self.dispatch.infos().iter().enumerate() {
            let fresh = self.service.snapshot(i);
            assert!(
                fresh.is_some_and(|f| {
                    info.len == f.len
                        && info.capacity == f.capacity
                        && info.busy == f.busy
                        && info.idle_since == f.idle_since
                        && info.last_congested == f.last_congested
                        && info.up == f.up
                }),
                "scheduler view out of sync with core {i} at t={now:?}"
            );
        }
    }

    /// Run to completion (horizon + drain) and return the report.
    pub fn run(self) -> SimReport {
        self.run_full().0
    }

    /// Like [`Engine::run`], but also hands back the scheduler so callers
    /// can read policy-internal statistics (e.g. LAPS park/wake counts).
    pub fn run_returning_scheduler(self) -> (SimReport, S) {
        let (report, scheduler, _probes) = self.run_full();
        (report, scheduler)
    }

    /// Run to completion and hand back the report, the scheduler, and
    /// the probe host (with everything the probes accumulated).
    pub fn run_full(mut self) -> (SimReport, S, P) {
        let last_t = if self.batch_eligible() {
            self.run_batched(&mut ())
        } else {
            self.run_scalar()
        };
        self.finish(last_t)
    }

    /// Run to completion with per-stage cycle accounting (see
    /// [`CycleReport`]). Accounting spans exist only in the batched
    /// loop: a configuration that falls back to scalar execution (fault
    /// plans, the timer-wheel backend, `ExecutionMode::Scalar`) returns
    /// an empty report. The accounting reads the host clock but feeds
    /// nothing back into the simulation, so the [`SimReport`] is
    /// byte-identical with accounting on or off.
    pub fn run_with_cycles(mut self) -> (SimReport, CycleReport) {
        if self.batch_eligible() {
            let mut acc = CycleAccounting::new();
            let last_t = self.run_batched(&mut acc);
            (self.finish(last_t).0, acc.finish())
        } else {
            let last_t = self.run_scalar();
            (self.finish(last_t).0, CycleReport::empty())
        }
    }

    /// The scalar run loop: one heap pop per event. The reference
    /// implementation, and the only loop supporting fault plans and the
    /// timer-wheel backend. Returns the time of the last event.
    fn run_scalar(&mut self) -> SimTime {
        // Prime arrivals and the rate-update ticker.
        for (i, gap) in self.ingest.prime_gaps() {
            if gap <= self.cfg.duration {
                self.events.push(gap, Ev::Arrival(i));
            }
        }
        if self.cfg.rate_update_interval <= self.cfg.duration {
            self.events
                .push(self.cfg.rate_update_interval, Ev::RateUpdate);
        }
        // Prime the fault plan: one event per entry, in plan order, so
        // same-instant entries fire in insertion order (the queue breaks
        // time ties by insertion sequence). Entries beyond the horizon
        // still fire — a heal may legitimately land during the drain.
        for i in 0..self.cfg.faults.len() {
            if let Some(&(at, _)) = self.cfg.faults.get(i) {
                self.events.push(at, Ev::Fault(i));
            }
        }

        let mut last_t = SimTime::ZERO;
        while let Some((t, ev)) = self.events.pop() {
            #[cfg(feature = "invariants")]
            self.check_invariants(t, last_t);
            last_t = t;
            self.record.note_loop_event();
            match ev {
                Ev::Arrival(src) => self.on_arrival(src, t),
                Ev::Finish(core, generation) => self.on_finish(core, generation, t),
                Ev::RateUpdate => self.on_rate_update(t),
                Ev::Fault(idx) => self.on_fault(idx, t),
                Ev::StallEnd(core) => self.on_stall_end(core, t),
            }
            #[cfg(feature = "invariants")]
            self.check_invariants(t, last_t);
        }
        last_t
    }

    /// The epilogue shared by both loops: drain, account, finalize.
    fn finish(mut self, last_t: SimTime) -> (SimReport, S, P) {
        self.record.set_end_time(last_t.max(self.cfg.duration));

        // Anything still waiting in the restoration buffer departs at the
        // final instant.
        self.record.drain_restoration(self.cfg.duration);
        let reallocs = self.dispatch.core_reallocations();
        let busy = self.service.busy_ns();
        let faults = self
            .faults_enabled
            .then(|| std::mem::take(&mut self.fstats));
        let (mut report, probes) = self.record.finalize(reallocs, busy, faults);
        if self.sync_enabled {
            report.sync = Some(std::mem::take(&mut self.sync_stats));
        }
        (report, self.dispatch.into_scheduler(), probes)
    }

    /// Borrow the scheduler (e.g. to inspect detector state post-run in
    /// tests that drive the engine manually).
    pub fn scheduler(&self) -> &S {
        self.dispatch.scheduler_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{EventLogProbe, MetricsProbe, UtilizationProbe};
    use crate::sched::{JoinShortestQueue, RoundRobin, SystemView};
    use crate::source::RateSpec;
    use nptrace::TracePreset;
    use nptraffic::ServiceKind;

    fn one_source(rate_mpps: f64) -> Vec<SourceConfig> {
        vec![SourceConfig {
            service: ServiceKind::IpForward,
            trace: TracePreset::Auckland(1),
            rate: RateSpec::Constant(rate_mpps),
        }]
    }

    fn quick_cfg(n_cores: usize, duration_ms: u64) -> EngineConfig {
        EngineConfig {
            n_cores,
            duration: SimTime::from_millis(duration_ms),
            scale: 1.0,
            seed: 42,
            ..EngineConfig::default()
        }
    }

    /// A test policy pinning each flow to `crc16 % n` — ideal flow
    /// locality, no migration ever.
    struct PinByHash;
    impl Scheduler for PinByHash {
        fn name(&self) -> &str {
            "pin-by-hash"
        }
        fn schedule(&mut self, pkt: &PacketDesc, view: &SystemView<'_>) -> usize {
            (nphash::crc16_ccitt(&pkt.flow.to_bytes()) as usize) % view.n_cores()
        }
    }

    /// A pathological policy that bounces every packet of every flow
    /// between cores 0 and 1.
    struct PingPong(usize);
    impl Scheduler for PingPong {
        fn name(&self) -> &str {
            "ping-pong"
        }
        fn schedule(&mut self, _p: &PacketDesc, _v: &SystemView<'_>) -> usize {
            self.0 ^= 1;
            self.0
        }
    }

    #[test]
    fn conservation_after_drain() {
        // Overloaded single core: 1 Mpps offered into 2 Mpps... IP fwd
        // takes 0.5µs ⇒ capacity exactly 2 Mpps; offer 4 Mpps to force
        // drops.
        let report =
            Engine::new(quick_cfg(1, 20), &one_source(4.0), JoinShortestQueue::new()).run();
        assert!(report.offered > 0);
        assert!(report.dropped > 0, "overload must drop");
        assert_eq!(
            report.offered,
            report.accounted(),
            "drain accounts for every packet"
        );
    }

    #[test]
    fn underload_single_core_no_drops() {
        let report =
            Engine::new(quick_cfg(1, 20), &one_source(1.0), JoinShortestQueue::new()).run();
        assert_eq!(report.dropped, 0, "0.5 load should not drop");
        assert_eq!(report.offered, report.processed);
    }

    #[test]
    fn flow_pinning_preserves_order() {
        let report = Engine::new(quick_cfg(4, 50), &one_source(6.0), PinByHash).run();
        assert!(report.processed > 1_000);
        assert_eq!(report.out_of_order, 0, "pinned flows can never reorder");
        assert_eq!(report.migration_events, 0);
        assert_eq!(report.migrated_packets, 0);
    }

    #[test]
    fn ping_pong_migrates_and_reorders() {
        let report = Engine::new(quick_cfg(2, 50), &one_source(3.0), PingPong(0)).run();
        assert!(report.migration_events > 0);
        assert!(report.migrated_packets > 0);
        assert!(
            report.out_of_order > 0,
            "alternating cores must reorder some flows (ooo={})",
            report.out_of_order
        );
    }

    #[test]
    fn cold_cache_counted_on_service_switches() {
        // Two services sharing one core via JSQ: every alternation pays.
        let sources = vec![
            SourceConfig {
                service: ServiceKind::IpForward,
                trace: TracePreset::Auckland(1),
                rate: RateSpec::Constant(0.02),
            },
            SourceConfig {
                service: ServiceKind::MalwareScan,
                trace: TracePreset::Auckland(2),
                rate: RateSpec::Constant(0.02),
            },
        ];
        let report = Engine::new(quick_cfg(1, 100), &sources, JoinShortestQueue::new()).run();
        assert!(report.processed > 100);
        assert!(
            report.cold_fraction() > 0.2,
            "alternating services on one core should run cold often (got {})",
            report.cold_fraction()
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let r = Engine::new(quick_cfg(4, 30), &one_source(5.0), JoinShortestQueue::new()).run();
            (
                r.offered,
                r.dropped,
                r.processed,
                r.out_of_order,
                r.migration_events,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeds_change_the_run() {
        let mut cfg = quick_cfg(4, 30);
        let a = Engine::new(cfg.clone(), &one_source(5.0), JoinShortestQueue::new()).run();
        cfg.seed = 43;
        let b = Engine::new(cfg, &one_source(5.0), JoinShortestQueue::new()).run();
        assert_ne!(a.offered, b.offered);
    }

    #[test]
    fn round_robin_on_idle_cores_keeps_order_by_luck_of_uniform_service() {
        // RR over 2 cores at trivial load: each packet finishes before the
        // next arrives, so even RR cannot reorder.
        let report = Engine::new(quick_cfg(2, 20), &one_source(0.01), RoundRobin::new()).run();
        assert_eq!(report.out_of_order, 0);
        assert!(report.migration_events > 0, "RR still migrates flows");
    }

    #[test]
    fn offered_scales_with_rate_and_duration() {
        let r1 = Engine::new(quick_cfg(4, 20), &one_source(1.0), JoinShortestQueue::new()).run();
        let r2 = Engine::new(quick_cfg(4, 40), &one_source(1.0), JoinShortestQueue::new()).run();
        // 1 Mpps for 20 ms ≈ 20k packets.
        assert!(
            (r1.offered as f64 - 20_000.0).abs() < 2_000.0,
            "offered {}",
            r1.offered
        );
        let ratio = r2.offered as f64 / r1.offered as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn scale_preserves_offered_load_shape() {
        // Same experiment at scale 1 and scale 10: offered count drops by
        // 10x but drop *fraction* stays in the same band.
        let mk = |scale: f64| EngineConfig {
            n_cores: 2,
            duration: SimTime::from_millis(200),
            scale,
            seed: 7,
            ..EngineConfig::default()
        };
        let a = Engine::new(mk(1.0), &one_source(6.0), JoinShortestQueue::new()).run();
        let b = Engine::new(mk(10.0), &one_source(6.0), JoinShortestQueue::new()).run();
        let cnt_ratio = a.offered as f64 / b.offered as f64;
        assert!((cnt_ratio - 10.0).abs() < 2.0, "count ratio {cnt_ratio}");
        assert!(
            (a.drop_fraction() - b.drop_fraction()).abs() < 0.1,
            "drop fractions diverged: {} vs {}",
            a.drop_fraction(),
            b.drop_fraction()
        );
    }

    #[test]
    fn restoration_eliminates_reordering() {
        // The ping-pong policy reorders heavily; with an egress
        // restoration buffer the stream leaves in order, at the cost of
        // buffer occupancy and wait time.
        let mut cfg = quick_cfg(2, 10);
        cfg.restoration = Some(SimTime::from_millis(5));
        let with = Engine::new(cfg, &one_source(3.0), PingPong(0)).run();
        let without = Engine::new(quick_cfg(2, 10), &one_source(3.0), PingPong(0)).run();
        assert!(without.out_of_order > 0);
        assert_eq!(with.out_of_order, 0, "restoration must re-sequence");
        let stats = with.restoration.expect("stats recorded");
        assert!(stats.buffered > 0, "some packets must have waited");
        assert!(stats.peak_occupancy > 0);
        assert_eq!(
            with.offered,
            with.dropped + with.processed,
            "conservation holds"
        );
    }

    #[test]
    fn restoration_with_drops_does_not_deadlock() {
        // Overload a single core so drops punch holes in the sequence
        // space; the gap notifications keep the buffer draining.
        let mut cfg = quick_cfg(2, 8);
        cfg.restoration = Some(SimTime::from_millis(2));
        let r = Engine::new(cfg, &one_source(6.0), PingPong(0)).run();
        assert!(r.dropped > 0);
        assert_eq!(r.offered, r.dropped + r.processed);
        assert!(r.restoration.is_some());
    }

    #[test]
    fn control_plane_classifier_diverts_expected_fraction() {
        let mut cfg = quick_cfg(2, 40);
        cfg.control_plane_fraction = 0.1;
        let r = Engine::new(cfg, &one_source(1.0), JoinShortestQueue::new()).run();
        let total = r.offered + r.slow_path;
        let frac = r.slow_path as f64 / total as f64;
        assert!((frac - 0.1).abs() < 0.02, "slow-path fraction {frac}");
        // Data-plane accounting is unaffected.
        assert_eq!(r.offered, r.dropped + r.processed);
        // Default config diverts nothing.
        let r0 = Engine::new(quick_cfg(2, 40), &one_source(1.0), JoinShortestQueue::new()).run();
        assert_eq!(r0.slow_path, 0);
    }

    #[test]
    fn busy_time_tracks_load() {
        // Flow pinning: no migration penalties, so busy time is exactly
        // offered work: 2 Mpps x 0.5 µs = 1 core-equivalent over 4 cores.
        let r = Engine::new(quick_cfg(4, 20), &one_source(2.0), PinByHash).run();
        assert_eq!(r.core_busy_ns.len(), 4);
        let u = r.mean_utilization();
        assert!((u - 0.25).abs() < 0.05, "mean utilization {u}");
        assert_eq!(r.active_cores(0.02), 4, "hash spreads flows over all cores");
        assert_eq!(r.active_cores(2.0), 0);
    }

    #[test]
    fn per_service_breakdown_sums_to_totals() {
        let sources = vec![
            SourceConfig {
                service: ServiceKind::IpForward,
                trace: TracePreset::Auckland(1),
                rate: RateSpec::Constant(2.0),
            },
            SourceConfig {
                service: ServiceKind::VpnOut,
                trace: TracePreset::Auckland(2),
                rate: RateSpec::Constant(0.5),
            },
        ];
        let r = Engine::new(quick_cfg(4, 30), &sources, JoinShortestQueue::new()).run();
        let off: u64 = r.per_service.iter().map(|s| s.offered).sum();
        let drop: u64 = r.per_service.iter().map(|s| s.dropped).sum();
        let proc: u64 = r.per_service.iter().map(|s| s.processed).sum();
        assert_eq!(off, r.offered);
        assert_eq!(drop, r.dropped);
        assert_eq!(proc, r.processed);
    }

    #[test]
    fn probes_do_not_change_the_report() {
        // The bus contract: attaching any probe set leaves the report
        // byte-identical to the zero-probe run.
        let bare = Engine::new(quick_cfg(2, 30), &one_source(3.0), PingPong(0)).run();
        let probes: ProbeStack = vec![
            Box::new(MetricsProbe::new()),
            Box::new(UtilizationProbe::new(SimTime::from_millis(1))),
            Box::new(EventLogProbe::new()),
        ];
        let (probed, _sched, _probes) =
            Engine::with_probe_stack(quick_cfg(2, 30), &one_source(3.0), PingPong(0), probes)
                .run_full();
        let a = serde_json::to_string(&bare).expect("bare report serializes");
        let b = serde_json::to_string(&probed).expect("probed report serializes");
        assert_eq!(a, b, "probes must be invisible to the report");
    }

    #[test]
    fn metrics_probe_agrees_with_report() {
        let probes: ProbeStack = vec![Box::new(MetricsProbe::new())];
        let (report, _sched, probes) =
            Engine::with_probe_stack(quick_cfg(2, 30), &one_source(4.0), PingPong(0), probes)
                .run_full();
        let metrics = probes
            .first()
            .and_then(|p| p.as_any().downcast_ref::<MetricsProbe>())
            .expect("metrics probe comes back");
        let counters = metrics.counters();
        let by_name = |n: &str| {
            counters
                .iter()
                .find(|(name, _)| *name == n)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(by_name("arrivals"), report.offered);
        assert_eq!(by_name("drops"), report.dropped);
        assert_eq!(by_name("departures"), report.processed);
        assert_eq!(by_name("migrations"), report.migration_events);
        assert_eq!(by_name("cold_starts"), report.cold_starts);
        assert_eq!(by_name("reorders"), report.out_of_order);
        assert_eq!(
            by_name("dispatched") + by_name("drops"),
            report.offered,
            "every offered packet is dispatched or dropped"
        );
    }

    #[test]
    fn crash_conserves_packets_and_counts_losses() {
        // Two cores at 0.75 load, one dies mid-run: its in-flight and
        // queued packets become fault drops, the survivor overloads, and
        // the drain still accounts for every offered packet.
        let mut cfg = quick_cfg(2, 20);
        cfg.faults = FaultPlan::new().crash(SimTime::from_millis(5), 0);
        let r = Engine::new(cfg, &one_source(3.0), JoinShortestQueue::new()).run();
        assert_eq!(r.offered, r.accounted(), "conservation across a crash");
        let f = r.faults.as_ref().expect("fault machinery was active");
        assert_eq!(f.crashes, 1);
        assert_eq!(f.injected, 1);
        assert!(f.fault_drops > 0, "the dead core held packets");
        assert!(r.dropped >= f.fault_drops);
    }

    #[test]
    fn heal_restores_capacity() {
        let crash_at = SimTime::from_millis(4);
        let heal_at = SimTime::from_millis(8);
        let mut down = quick_cfg(2, 30);
        down.faults = FaultPlan::new().crash(crash_at, 0);
        let mut healed = quick_cfg(2, 30);
        healed.faults = FaultPlan::new().crash(crash_at, 0).heal(heal_at, 0);
        let a = Engine::new(down, &one_source(3.0), JoinShortestQueue::new()).run();
        let b = Engine::new(healed, &one_source(3.0), JoinShortestQueue::new()).run();
        let fb = b.faults.as_ref().expect("stats present");
        assert_eq!(fb.heals, 1);
        assert_eq!(a.offered, a.accounted());
        assert_eq!(b.offered, b.accounted());
        assert!(
            b.processed > a.processed,
            "a healed core must recover throughput ({} vs {})",
            b.processed,
            a.processed
        );
        assert!(b.dropped < a.dropped);
    }

    #[test]
    fn unrepaired_policy_degrades_via_redirects() {
        // PinByHash has no repair hook: after the crash it keeps hashing
        // onto the dead core and the engine redirects those arrivals.
        let mut cfg = quick_cfg(4, 20);
        cfg.faults = FaultPlan::new().crash(SimTime::from_millis(5), 1);
        let r = Engine::new(cfg, &one_source(2.0), PinByHash).run();
        let f = r.faults.as_ref().expect("stats present");
        assert_eq!(f.unrepaired, 1, "PinByHash honestly cannot repair");
        assert_eq!(f.repairs, 0);
        assert!(f.redirects > 0, "hashed-to-dead arrivals get redirected");
        assert_eq!(r.offered, r.accounted());
    }

    #[test]
    fn last_core_crash_drops_all_subsequent_arrivals() {
        let mut cfg = quick_cfg(1, 10);
        cfg.faults = FaultPlan::new().crash(SimTime::from_millis(2), 0);
        let r = Engine::new(cfg, &one_source(1.0), JoinShortestQueue::new()).run();
        let f = r.faults.as_ref().expect("stats present");
        assert!(f.fault_drops > 0);
        assert_eq!(f.redirects, 0, "nowhere to redirect to");
        assert_eq!(r.offered, r.accounted());
        // Roughly 2 of 10 ms of service happened; the rest was dropped.
        assert!(r.dropped > r.processed);
    }

    #[test]
    fn throttle_degrades_and_restores_throughput() {
        // 1.5 Mpps into one 2 Mpps core: clean at full speed; a 4x
        // throttle cuts capacity to 0.5 Mpps and forces drops.
        let base = Engine::new(quick_cfg(1, 20), &one_source(1.5), JoinShortestQueue::new()).run();
        assert_eq!(base.dropped, 0);
        let mut cfg = quick_cfg(1, 20);
        cfg.faults = FaultPlan::new()
            .throttle(SimTime::from_millis(2), 0, 4.0)
            .throttle(SimTime::from_millis(12), 0, 1.0);
        let r = Engine::new(cfg, &one_source(1.5), JoinShortestQueue::new()).run();
        assert!(r.dropped > 0, "a throttled core must fall behind");
        assert_eq!(r.offered, r.accounted());
        assert_eq!(r.faults.as_ref().map(|f| f.injected), Some(2));
    }

    #[test]
    fn transient_stall_backs_up_the_queue() {
        let mut cfg = quick_cfg(1, 10);
        cfg.faults = FaultPlan::new().stall(SimTime::from_millis(2), 0, SimTime::from_millis(5));
        let r = Engine::new(cfg, &one_source(1.0), JoinShortestQueue::new()).run();
        assert!(r.dropped > 0, "5 ms of arrivals into a 32-slot queue");
        assert_eq!(r.offered, r.accounted());
        let base = Engine::new(quick_cfg(1, 10), &one_source(1.0), JoinShortestQueue::new()).run();
        assert_eq!(base.dropped, 0, "same load without the stall is clean");
    }

    #[test]
    fn flood_raises_offered_load() {
        let base = Engine::new(quick_cfg(2, 10), &one_source(1.0), JoinShortestQueue::new()).run();
        let mut cfg = quick_cfg(2, 10);
        cfg.faults =
            FaultPlan::new().flood(SimTime::from_millis(2), SimTime::from_millis(8), 0, 3.0);
        let r = Engine::new(cfg, &one_source(1.0), JoinShortestQueue::new()).run();
        assert!(
            r.offered as f64 > base.offered as f64 * 1.5,
            "3x flood over 6 of 10 ms should raise offered load well above \
             baseline ({} vs {})",
            r.offered,
            base.offered
        );
        assert_eq!(r.offered, r.accounted());
    }

    #[test]
    fn drop_head_evicts_oldest_instead_of_arrival() {
        let mut cfg = quick_cfg(1, 20);
        cfg.drop_policy = DropPolicy::DropHead;
        let r = Engine::new(cfg, &one_source(4.0), JoinShortestQueue::new()).run();
        let f = r.faults.as_ref().expect("non-default policy records stats");
        assert!(f.head_drops > 0);
        assert_eq!(
            f.head_drops, r.dropped,
            "under drop-head every drop is an eviction"
        );
        assert_eq!(r.offered, r.accounted());
    }

    #[test]
    fn backpressure_stages_overflow_and_still_conserves() {
        let mut bp_cfg = quick_cfg(1, 20);
        bp_cfg.drop_policy = DropPolicy::Backpressure;
        let tail = Engine::new(quick_cfg(1, 20), &one_source(4.0), JoinShortestQueue::new()).run();
        let r = Engine::new(bp_cfg, &one_source(4.0), JoinShortestQueue::new()).run();
        let f = r.faults.as_ref().expect("stats present");
        assert!(f.backpressured > 0, "overflow packets must stage");
        assert!(r.dropped > 0, "staging is bounded too");
        assert!(
            r.dropped < tail.dropped,
            "staging absorbs part of the burst ({} vs {})",
            r.dropped,
            tail.dropped
        );
        assert_eq!(r.offered, r.accounted());
    }

    #[test]
    fn fault_free_report_omits_fault_stats() {
        let r = Engine::new(quick_cfg(2, 10), &one_source(1.0), JoinShortestQueue::new()).run();
        assert!(r.faults.is_none(), "no plan, default policy: dormant");
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(
            !json.contains("\"faults\""),
            "fault-free reports keep the pre-fault wire format"
        );
    }

    #[test]
    fn fault_runs_replay_deterministically() {
        let run = || {
            let mut cfg = quick_cfg(4, 20);
            cfg.faults = FaultPlan::new()
                .crash(SimTime::from_millis(3), 2)
                .heal(SimTime::from_millis(9), 2)
                .throttle(SimTime::from_millis(5), 0, 2.0)
                .stall(SimTime::from_millis(7), 1, SimTime::from_millis(1));
            let r = Engine::new(cfg, &one_source(4.0), JoinShortestQueue::new()).run();
            serde_json::to_string(&r).expect("serializes")
        };
        assert_eq!(run(), run(), "same plan + seed → byte-identical report");
    }

    #[test]
    fn fault_probe_sees_crash_heal_and_recovery() {
        let mut cfg = quick_cfg(2, 20);
        cfg.faults = FaultPlan::new()
            .crash(SimTime::from_millis(4), 0)
            .heal(SimTime::from_millis(8), 0);
        let probes: ProbeStack = vec![
            Box::new(crate::fault::FaultProbe::new()),
            Box::new(MetricsProbe::new()),
        ];
        let (report, _sched, probes) =
            Engine::with_probe_stack(cfg, &one_source(3.0), JoinShortestQueue::new(), probes)
                .run_full();
        let fp = probes
            .first()
            .and_then(|p| p.as_any().downcast_ref::<crate::fault::FaultProbe>())
            .expect("fault probe comes back");
        assert_eq!(fp.recoveries().len(), 1);
        let rec = fp.recoveries()[0];
        assert_eq!(rec.core, 0);
        assert_eq!(rec.downtime(), Some(SimTime::from_millis(4)));
        let recovery = rec.recovery_time().expect("core served again after heal");
        assert!(recovery >= SimTime::from_millis(4));
        let metrics = probes
            .get(1)
            .and_then(|p| p.as_any().downcast_ref::<MetricsProbe>())
            .expect("metrics probe comes back");
        let by_name = |n: &str| {
            metrics
                .counters()
                .iter()
                .find(|(name, _)| *name == n)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(by_name("core_crashes"), 1);
        assert_eq!(by_name("core_heals"), 1);
        assert_eq!(report.faults.as_ref().map(|f| f.crashes), Some(1));
    }

    #[test]
    fn utilization_probe_matches_busy_time() {
        let probes: ProbeStack = vec![Box::new(UtilizationProbe::new(SimTime::from_millis(1)))];
        let (report, _sched, probes) =
            Engine::with_probe_stack(quick_cfg(4, 20), &one_source(2.0), PinByHash, probes)
                .run_full();
        let util = probes
            .first()
            .and_then(|p| p.as_any().downcast_ref::<UtilizationProbe>())
            .expect("utilization probe comes back");
        let bucket_ns = util.bucket_width().as_nanos() as f64;
        for (core, &busy) in report.core_busy_ns.iter().enumerate() {
            let probe_busy: f64 = util
                .timeline(core)
                .iter()
                .map(|frac| frac * bucket_ns)
                .sum();
            assert!(
                (probe_busy - busy as f64).abs() < 1.0,
                "core {core}: probe {probe_busy} vs report {busy}"
            );
        }
    }
}
