//! The batched run loop: burst-of-32 execution with byte-identical
//! semantics.
//!
//! The scalar loop pays a binary-heap push+pop round trip per event and
//! draws each arrival's RNG exactly when it fires. The batched loop
//! restructures *execution only*:
//!
//! * **Arrival lookahead** — each source pre-draws up to a burst of
//!   arrivals (gap + header) into an [`ArrivalBuf`](super::ingest);
//!   shared-state work (interning, classification, packet IDs) stays at
//!   processing time.
//! * **Heap-free merge** — the pending-event set is tiny and structured:
//!   at most one finish per core, one head arrival per source, one rate
//!   update. A linear scan for the minimum `(time, seq)` replaces the
//!   heap entirely — one event-queue op per *burst refill* instead of a
//!   push+pop per event.
//! * **Seq emulation** — the scalar engine's tie-break is the heap's
//!   insertion sequence. The batched loop allocates from its own counter
//!   at exactly the scalar push points (prime order, finish-before-next-
//!   arrival inside an arrival, rate reschedule), so the `(time, seq)`
//!   total order — and therefore every report byte — is identical.
//!
//! # Why lookahead is legal
//!
//! A source's gap draws and its rate-refresh noise draws share one
//! private RNG stream, so a gap may be drawn early **iff** the scalar
//! engine would also draw it before the next refresh. The refill loop
//! enforces `cursor < barrier` (barrier = next pending rate-update
//! time, strict, ties deferred); the first draw of a refill is exempt
//! because refills only happen at the exact simulation point where the
//! scalar engine performs that same draw. Header draws come from the
//! trace generator's separate stream and are unconditionally safe to
//! pre-draw. Everything order-sensitive across sources — interner,
//! classifier RNG, packet IDs, scheduler state — runs at processing
//! time, in merged event order.
//!
//! Fault plans, non-drop-tail policies, and the timer-wheel backend
//! fall back to the scalar loop (checked by
//! [`Engine::batch_eligible`]); the `batch_equivalence` workspace test
//! pins byte-identical reports across both loops for every registered
//! policy.

use super::cycles::{CycleSink, Stage};
use super::ingest::Admission;
use super::service::EnqueueOutcome;
use super::{Engine, EventBackend, ExecutionMode};
use crate::event::SimEvent;
use crate::packet::PacketDesc;
use crate::probe::ProbeHost;
use crate::sched::Scheduler;
use detsim::SimTime;

/// The batched loop's pending-event set: the explicit, bounded
/// replacement for the scalar loop's heap.
///
/// The merge keeps **incremental minima** over the two slot families so
/// the steady-state winner pick is three comparisons, not an
/// `n_cores + n_sources` sweep: arming a finish (or re-heading a
/// source) only compares against the cached minimum, and a full family
/// rescan happens only when the cached minimum itself is consumed.
#[derive(Debug)]
pub(super) struct BatchState {
    /// Per-core pending finish: `(completion time, emulated seq)`.
    finish: Vec<Option<(SimTime, u64)>>,
    /// Cached minimum over `finish`: `(time, seq, core)`.
    finish_min: Option<(SimTime, u64, u32)>,
    /// Cached minimum over the per-source head arrivals:
    /// `(time, seq, src)`.
    arrival_min: Option<(SimTime, u64, u32)>,
    /// The single pending rate update, if any.
    rate: Option<(SimTime, u64)>,
    /// Emulated heap insertion counter (the scalar tie-break).
    next_seq: u64,
}

impl BatchState {
    fn new(n_cores: usize) -> Self {
        BatchState {
            finish: vec![None; n_cores],
            finish_min: None,
            arrival_min: None,
            rate: None,
            next_seq: 0,
        }
    }

    /// Allocate the next emulated heap sequence number. Call sites must
    /// correspond 1:1, in order, with scalar-loop heap pushes.
    #[inline]
    fn alloc(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Time of the next pending rate update (`MAX` when none): the
    /// arrival-lookahead barrier.
    #[inline]
    fn barrier(&self) -> SimTime {
        self.rate.map_or(SimTime::MAX, |(t, _)| t)
    }

    /// Arm core `core`'s finish slot and fold it into the cached min.
    #[inline]
    fn arm_finish(&mut self, core: usize, at: SimTime, seq: u64) {
        if let Some(slot) = self.finish.get_mut(core) {
            debug_assert!(slot.is_none(), "core {core} double-armed");
            *slot = Some((at, seq));
        }
        if self
            .finish_min
            .is_none_or(|(bt, bs, _)| (at, seq) < (bt, bs))
        {
            self.finish_min = Some((at, seq, core as u32));
        }
    }

    /// Consume the fired finish (always the cached minimum) and rescan
    /// the family for the new minimum.
    #[inline]
    fn consume_finish(&mut self, core: usize) {
        if let Some(slot) = self.finish.get_mut(core) {
            *slot = None;
        }
        self.finish_min = None;
        for (c, slot) in self.finish.iter().enumerate() {
            if let Some((t, s)) = *slot {
                if self.finish_min.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    self.finish_min = Some((t, s, c as u32));
                }
            }
        }
    }
}

/// The merge scan's winner.
#[derive(Debug, Clone, Copy)]
enum Win {
    Arrival(usize),
    Finish(usize),
    Rate,
}

impl<S: Scheduler, P: ProbeHost> Engine<S, P> {
    /// Whether this configuration runs under the batched loop. Fault
    /// machinery (crash generations, floods, head-drop/staging) and the
    /// timer-wheel backend keep the scalar loop.
    pub(super) fn batch_eligible(&self) -> bool {
        matches!(self.cfg.execution, ExecutionMode::Batched { .. })
            && !self.faults_enabled
            && self.cfg.event_backend == EventBackend::Heap
    }

    /// The batched run loop. Returns the time of the last dispatched
    /// event (the scalar loop's `last_t`), for the shared epilogue.
    pub(super) fn run_batched<C: CycleSink>(&mut self, sink: &mut C) -> SimTime {
        debug_assert!(self.batch_eligible());
        let burst = match self.cfg.execution {
            ExecutionMode::Batched { burst } => burst as usize,
            ExecutionMode::Scalar => 1,
        };
        self.ingest.batch_init(burst);
        let n_sources = self.ingest.n_sources();
        let horizon = self.cfg.duration;
        let mut st = BatchState::new(self.cfg.n_cores);

        // Prime, mirroring the scalar loop's seq allocation order: every
        // source's first gap (source order, seq only for arrivals inside
        // the horizon), then the rate-update ticker. The prime barrier is
        // the first rate update — none is pending yet, but the first
        // refresh the scalar engine performs is at `rate_update_interval`.
        let barrier0 = if self.cfg.rate_update_interval <= horizon {
            self.cfg.rate_update_interval
        } else {
            SimTime::MAX
        };
        for src in 0..n_sources {
            let t0 = if C::ACTIVE { sink.span_start() } else { 0 };
            let drawn = self.ingest.batch_refill(src, barrier0, horizon);
            if C::ACTIVE {
                sink.span_end(Stage::Ingest, t0, drawn as u64);
            }
        }
        for src in 0..n_sources {
            if self.ingest.batch_head(src).is_some() {
                let seq = st.alloc();
                self.ingest.batch_set_head_seq(src, seq);
            }
        }
        if self.cfg.rate_update_interval <= horizon {
            st.rate = Some((self.cfg.rate_update_interval, st.alloc()));
        }
        self.rescan_arrivals(&mut st);

        let mut last_t = SimTime::ZERO;
        loop {
            // Winner pick: minimum (time, seq) across the rate slot and
            // the two cached family minima — the exact total order the
            // scalar heap would pop in, in three comparisons.
            let t0 = if C::ACTIVE { sink.span_start() } else { 0 };
            let mut best: Option<(SimTime, u64, Win)> = st.rate.map(|(t, s)| (t, s, Win::Rate));
            if let Some((t, s, core)) = st.finish_min {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, Win::Finish(core as usize)));
                }
            }
            if let Some((t, s, src)) = st.arrival_min {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, Win::Arrival(src as usize)));
                }
            }
            if C::ACTIVE {
                sink.span_end(Stage::Merge, t0, 1);
            }
            let Some((t, _seq, win)) = best else {
                break;
            };
            #[cfg(feature = "invariants")]
            self.check_invariants(t, last_t);
            last_t = t;
            self.record.note_loop_event();
            match win {
                Win::Arrival(src) => {
                    self.batch_arrival(src, t, &mut st, sink);
                    // The fired head was the arrival minimum; re-derive
                    // it from the (possibly refilled) heads.
                    self.rescan_arrivals(&mut st);
                }
                Win::Finish(core) => {
                    st.consume_finish(core);
                    self.batch_finish(core, t, &mut st, sink);
                }
                Win::Rate => self.batch_rate_update(t, &mut st),
            }
            #[cfg(feature = "invariants")]
            self.check_invariants(t, last_t);
        }
        last_t
    }

    /// Recompute the cached arrival minimum from the SoA head mirrors:
    /// a flat `(time, seq)` sweep over `n_sources × 16` contiguous bytes
    /// (drained sources carry `SimTime::MAX` and can never win because
    /// buffered arrivals are capped at the horizon).
    fn rescan_arrivals(&self, st: &mut BatchState) {
        let (times, seqs) = self.ingest.arrival_heads();
        let mut best: Option<(SimTime, u64, u32)> = None;
        for (src, (&t, &s)) in times.iter().zip(seqs.iter()).enumerate() {
            if t == SimTime::MAX {
                continue;
            }
            if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                best = Some((t, s, src as u32));
            }
        }
        st.arrival_min = best;
    }

    /// The batched arrival handler: mirrors `on_arrival` minus the
    /// fault-only blocks (dead-core redirect, head-drop, staging), which
    /// `batch_eligible` proves unreachable here.
    fn batch_arrival<C: CycleSink>(
        &mut self,
        src: usize,
        now: SimTime,
        st: &mut BatchState,
        sink: &mut C,
    ) {
        let t0 = if C::ACTIVE { sink.span_start() } else { 0 };
        let Some(rec) = self.ingest.batch_pop(src) else {
            debug_assert!(false, "arrival winner without a buffered record");
            return;
        };
        let header = match self.ingest.admit_record(src, rec) {
            Admission::Missing => return,
            Admission::SlowPath { service } => {
                self.record
                    .publish(now, &SimEvent::DivertedSlowPath { service });
                if C::ACTIVE {
                    sink.span_end(Stage::Dispatch, t0, 1);
                }
                self.batch_next_arrival(src, st, sink);
                return;
            }
            Admission::FastPath(h) => h,
        };
        self.dispatch.grow_flows(self.ingest.flow_count());
        let flow_seq = self.dispatch.next_seq(header.slot);
        let mut pkt = PacketDesc {
            id: header.id,
            flow: header.flow,
            slot: header.slot,
            service: header.service,
            size: header.size,
            arrival: now,
            flow_seq,
            migrated: false,
            sync_debt_ns: 0,
        };
        self.record.publish(
            now,
            &SimEvent::PacketArrived {
                id: pkt.id,
                slot: pkt.slot,
                service: pkt.service,
                size: pkt.size,
            },
        );
        let target = self.dispatch.choose_core(&pkt, now, self.cfg.n_cores);
        if P::ACTIVE {
            self.drain_sched_events(now);
        }
        // SCR sync stamp — same point in the arrival as the scalar
        // loop (after the decision, before last-core bookkeeping), so
        // both loops stamp identical debts and reports stay
        // byte-identical. The replica touch commits below, only if the
        // queue accepts.
        if self.sync_enabled {
            self.stamp_sync(&mut pkt, target);
        }
        let prev_core = self.dispatch.last_core(pkt.slot);
        let migrated = matches!(prev_core, Some(c) if c != target);
        pkt.migrated = migrated;
        if C::ACTIVE {
            sink.span_end(Stage::Dispatch, t0, 1);
        }

        let t1 = if C::ACTIVE { sink.span_start() } else { 0 };
        let outcome = self.service.enqueue(target, pkt, now);
        debug_assert!(
            !matches!(
                outcome,
                EnqueueOutcome::HeadDropped { .. } | EnqueueOutcome::Staged(_)
            ),
            "head-drop/staging need fault machinery, which disables batching"
        );
        match outcome {
            EnqueueOutcome::Dropped => {
                self.record.publish(
                    now,
                    &SimEvent::Dropped {
                        id: pkt.id,
                        slot: pkt.slot,
                        service: pkt.service,
                        core: target,
                    },
                );
                self.dispatch.on_drop(&pkt, target);
                self.record.note_drop_gap(pkt.slot, pkt.flow_seq, now);
            }
            EnqueueOutcome::Enqueued(len)
            | EnqueueOutcome::HeadDropped { len, .. }
            | EnqueueOutcome::Staged(len) => {
                if self.sync_enabled {
                    self.commit_sync(pkt.slot, target, pkt.sync_debt_ns);
                }
                if P::ACTIVE {
                    self.record.publish(
                        now,
                        &SimEvent::Dispatched {
                            id: pkt.id,
                            slot: pkt.slot,
                            service: pkt.service,
                            core: target,
                            queue_len: len,
                            migrated,
                        },
                    );
                }
                if migrated {
                    if let Some(from) = prev_core {
                        self.record.publish(
                            now,
                            &SimEvent::Migration {
                                slot: pkt.slot,
                                from,
                                to: target,
                            },
                        );
                    }
                }
                self.dispatch.set_last_core(pkt.slot, target);
                self.batch_start_processing(target, now, st);
            }
        }
        self.sync_info(target);
        if C::ACTIVE {
            sink.span_end(Stage::Service, t1, 1);
        }

        self.batch_next_arrival(src, st, sink);
    }

    /// After an arrival from `src`: refill its lookahead if drained
    /// (this IS the scalar `schedule_next_arrival` RNG position), stamp
    /// the new head's seq, and prefetch the flow-table lines the next
    /// head will touch.
    fn batch_next_arrival<C: CycleSink>(&mut self, src: usize, st: &mut BatchState, sink: &mut C) {
        if self.ingest.batch_needs_refill(src) {
            let t0 = if C::ACTIVE { sink.span_start() } else { 0 };
            let drawn = self
                .ingest
                .batch_refill(src, st.barrier(), self.cfg.duration);
            if C::ACTIVE {
                sink.span_end(Stage::Ingest, t0, drawn as u64);
            }
        }
        if self.ingest.batch_head(src).is_some() {
            let seq = st.alloc();
            self.ingest.batch_set_head_seq(src, seq);
            // The head arrival's flow is known now; start the flow-table
            // fills it will need at processing time.
            if let Some(flow) = self.ingest.batch_peek_flow(src, 0) {
                if let Some(slot) = self.ingest.cached_slot(src, flow) {
                    self.dispatch.prefetch_flow(slot);
                }
            }
        }
    }

    /// The batched service-start: `start_processing` minus the heap push
    /// — the finish lands in the core's slot with an emulated seq.
    fn batch_start_processing(&mut self, core: usize, now: SimTime, st: &mut BatchState) {
        if let Some(started) = self.service.start_processing(core, now) {
            let seq = st.alloc();
            st.arm_finish(core, now + started.duration, seq);
            // The departure will read the order tracker's line for this
            // flow one service time from now; start the fill early.
            self.record.prefetch_departure(started.slot);
            self.record.publish(
                now,
                &SimEvent::ServiceStart {
                    core,
                    service: started.service,
                    cold: started.cold,
                    migrated: started.migrated,
                    duration: started.duration,
                },
            );
        }
    }

    /// The batched finish handler: `on_finish` minus the generation
    /// check (generations never advance without crashes).
    fn batch_finish<C: CycleSink>(
        &mut self,
        core: usize,
        now: SimTime,
        st: &mut BatchState,
        sink: &mut C,
    ) {
        let t0 = if C::ACTIVE { sink.span_start() } else { 0 };
        let Some(pkt) = self.service.take_current(core) else {
            debug_assert!(
                false,
                "finish event without packet in service on core {core}"
            );
            return;
        };
        if P::ACTIVE {
            self.record.publish(
                now,
                &SimEvent::ServiceEnd {
                    core,
                    service: pkt.service,
                },
            );
        }
        if C::ACTIVE {
            sink.span_end(Stage::Service, t0, 1);
        }
        let t1 = if C::ACTIVE { sink.span_start() } else { 0 };
        self.record.departure(pkt, now);
        if C::ACTIVE {
            sink.span_end(Stage::Record, t1, 1);
        }
        let t2 = if C::ACTIVE { sink.span_start() } else { 0 };
        self.batch_start_processing(core, now, st);
        self.sync_info(core);
        if C::ACTIVE {
            sink.span_end(Stage::Service, t2, 0);
        }
    }

    /// The batched rate update: `on_rate_update` with the reschedule
    /// landing in the rate slot instead of the heap.
    fn batch_rate_update(&mut self, now: SimTime, st: &mut BatchState) {
        st.rate = None;
        self.ingest.refresh_rates(now);
        if P::ACTIVE {
            self.record.publish(now, &SimEvent::EpochTick);
        }
        let next = now + self.cfg.rate_update_interval;
        if next <= self.cfg.duration {
            st.rate = Some((next, st.alloc()));
        }
    }
}
