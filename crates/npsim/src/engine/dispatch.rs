//! Dispatch stage: per-flow state and the scheduling decision.
//!
//! Owns the scheduling policy, the struct-of-arrays flow table (arrival
//! sequence numbers and last-core memory), and the incrementally
//! maintained per-core [`QueueInfo`] view handed to the policy.

use crate::packet::PacketDesc;
use crate::sched::{QueueInfo, RepairOutcome, SchedEvent, Scheduler, SystemView};
use nphash::FlowSlot;

/// Sentinel in [`FlowTable::last_core`]: the flow has not been enqueued
/// anywhere yet.
const NO_CORE: u32 = u32::MAX;

/// Struct-of-arrays per-flow state, indexed by [`FlowSlot`] — the
/// hash-free replacement for the former `DetHashMap<FlowId, _>` pair.
/// One predictable array access per packet per field.
#[derive(Debug, Default)]
struct FlowTable {
    /// Next arrival sequence number per flow.
    seq: Vec<u64>,
    /// Core the flow's last packet was enqueued to (`NO_CORE` = none).
    last_core: Vec<u32>,
}

impl FlowTable {
    /// Ensure slots `0..n` exist (new slots: seq 0, no last core).
    fn grow_to(&mut self, n: usize) {
        if self.seq.len() < n {
            self.seq.resize(n, 0);
            self.last_core.resize(n, NO_CORE);
        }
    }

    /// Fetch-and-increment the flow's arrival sequence counter.
    fn next_seq(&mut self, slot: FlowSlot) -> u64 {
        match self.seq.get_mut(slot.index()) {
            Some(s) => {
                let v = *s;
                *s += 1;
                v
            }
            None => {
                // Unreachable: the table is grown to the interner's length
                // before any lookup.
                debug_assert!(false, "flow table not grown to slot {slot:?}");
                0
            }
        }
    }

    /// The core the flow's previous packet was enqueued to, if any.
    fn last_core(&self, slot: FlowSlot) -> Option<usize> {
        self.last_core
            .get(slot.index())
            .and_then(|&c| (c != NO_CORE).then_some(c as usize))
    }

    /// Record the core the flow's packet was just enqueued to.
    fn set_last_core(&mut self, slot: FlowSlot, core: usize) {
        if let Some(c) = self.last_core.get_mut(slot.index()) {
            *c = core as u32;
        } else {
            debug_assert!(false, "flow table not grown to slot {slot:?}");
        }
    }
}

#[derive(Debug)]
pub(super) struct DispatchStage<S> {
    scheduler: S,
    /// Per-flow state (arrival seq, last core), slot-indexed.
    flows: FlowTable,
    /// Per-core scheduler view, maintained **incrementally**: only the
    /// core an event touched is resynced (one entry per event instead of
    /// an `n_cores` rebuild per arrival), and the buffer itself is
    /// steady-state allocation-free.
    infos: Vec<QueueInfo>,
}

impl<S: Scheduler> DispatchStage<S> {
    pub(super) fn new(scheduler: S, infos: Vec<QueueInfo>) -> Self {
        DispatchStage {
            scheduler,
            flows: FlowTable::default(),
            infos,
        }
    }

    /// Ensure the flow table covers `n` interned flows.
    pub(super) fn grow_flows(&mut self, n: usize) {
        self.flows.grow_to(n);
    }

    /// Fetch-and-increment the flow's arrival sequence counter.
    pub(super) fn next_seq(&mut self, slot: FlowSlot) -> u64 {
        self.flows.next_seq(slot)
    }

    /// The core the flow's previous packet was enqueued to, if any.
    pub(super) fn last_core(&self, slot: FlowSlot) -> Option<usize> {
        self.flows.last_core(slot)
    }

    /// Record the core the flow's packet was just enqueued to.
    pub(super) fn set_last_core(&mut self, slot: FlowSlot, core: usize) {
        self.flows.set_last_core(slot, core);
    }

    /// Start cache fills for the flow's table entries (batched mode:
    /// issued when the next arrival is known but not yet processed, so
    /// the fill has ~one inter-arrival gap of lead time).
    #[inline]
    pub(super) fn prefetch_flow(&self, slot: FlowSlot) {
        if let Some(s) = self.flows.seq.get(slot.index()) {
            crate::mem::prefetch_read(s);
        }
        if let Some(c) = self.flows.last_core.get(slot.index()) {
            crate::mem::prefetch_read(c);
        }
    }

    /// Ask the policy for a target core. The view is maintained
    /// incrementally (see [`DispatchStage::set_info`]); it is briefly
    /// moved out so the scheduler can borrow it alongside the policy.
    ///
    /// # Panics
    /// Panics if the policy returns a core index `>= n_cores`.
    pub(super) fn choose_core(
        &mut self,
        pkt: &PacketDesc,
        now: detsim::SimTime,
        n_cores: usize,
    ) -> usize {
        let infos = std::mem::take(&mut self.infos);
        let view = SystemView {
            now,
            queues: &infos,
        };
        let target = self.scheduler.schedule(pkt, &view);
        self.infos = infos;
        assert!(target < n_cores, "scheduler returned core {target}");
        target
    }

    /// Resync one core's view entry after the service stage mutated it.
    #[inline]
    pub(super) fn set_info(&mut self, core: usize, info: QueueInfo) {
        if let Some(slot) = self.infos.get_mut(core) {
            *slot = info;
        }
    }

    /// Congestion feedback passthrough to the policy.
    pub(super) fn on_drop(&mut self, pkt: &PacketDesc, core: usize) {
        self.scheduler.on_drop(pkt, core);
    }

    /// Fault passthrough: a core crashed; ask the policy to repair.
    pub(super) fn on_core_down(&mut self, core: usize) -> RepairOutcome {
        self.scheduler.on_core_down(core)
    }

    /// Fault passthrough: a core healed; the policy may re-grow onto it.
    pub(super) fn on_core_up(&mut self, core: usize) -> RepairOutcome {
        self.scheduler.on_core_up(core)
    }

    pub(super) fn name(&self) -> &str {
        self.scheduler.name()
    }

    pub(super) fn core_reallocations(&self) -> u64 {
        self.scheduler.core_reallocations()
    }

    /// Drain the policy's buffered [`SchedEvent`]s into `buf`.
    pub(super) fn drain_events_into(&mut self, buf: &mut Vec<SchedEvent>) {
        self.scheduler.drain_events(&mut |ev| buf.push(ev));
    }

    pub(super) fn scheduler_ref(&self) -> &S {
        &self.scheduler
    }

    pub(super) fn into_scheduler(self) -> S {
        self.scheduler
    }

    /// The maintained view, for invariant checking.
    #[cfg(feature = "invariants")]
    pub(super) fn infos(&self) -> &[QueueInfo] {
        &self.infos
    }
}
