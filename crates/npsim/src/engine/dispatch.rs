//! Dispatch stage: per-flow state and the scheduling decision.
//!
//! Owns the scheduling policy, the struct-of-arrays flow table (arrival
//! sequence numbers and last-core memory), and the incrementally
//! maintained per-core [`QueueInfo`] view handed to the policy.

use crate::packet::PacketDesc;
use crate::sched::{QueueInfo, RepairOutcome, SchedEvent, Scheduler, SystemView};
use nphash::FlowSlot;

/// Sentinel in [`FlowTable::last_core`]: the flow has not been enqueued
/// anywhere yet.
const NO_CORE: u32 = u32::MAX;

/// Struct-of-arrays per-flow state, indexed by [`FlowSlot`] — the
/// hash-free replacement for the former `DetHashMap<FlowId, _>` pair.
/// One predictable array access per packet per field.
#[derive(Debug, Default)]
struct FlowTable {
    /// Next arrival sequence number per flow.
    seq: Vec<u64>,
    /// Core the flow's last packet was enqueued to (`NO_CORE` = none).
    last_core: Vec<u32>,
    /// SCR replica set per flow: bit `c & 63` set when core `c` touched
    /// the flow since its last consolidation. Grown (and paid for) only
    /// when the engine enabled the sync model — empty otherwise, the
    /// same dormant-vector pattern as the fault machinery.
    replicas: Vec<u64>,
    /// Packets dispatched since the flow's last consolidation (drives
    /// `SyncPolicy::sync_every`). Grown alongside `replicas`.
    since_sync: Vec<u32>,
    /// Whether the SCR columns above are maintained.
    sync: bool,
}

impl FlowTable {
    /// Ensure slots `0..n` exist (new slots: seq 0, no last core).
    fn grow_to(&mut self, n: usize) {
        if self.seq.len() < n {
            self.seq.resize(n, 0);
            self.last_core.resize(n, NO_CORE);
            if self.sync {
                self.replicas.resize(n, 0);
                self.since_sync.resize(n, 0);
            }
        }
    }

    /// The stale-replica count a dispatch of `slot` to `core` would pay:
    /// how many *other* cores hold the flow's state since the last
    /// consolidation. Read-only — the engine stamps the surcharge at
    /// dispatch but records the touch (via [`FlowTable::sync_touch`])
    /// only if the packet is actually accepted into a queue, so a
    /// drop-tailed packet neither dirties the replica set nor shows up
    /// in the sync totals.
    ///
    /// Cores are folded into 64 bitmap lanes (`core & 63`); beyond 64
    /// cores the count is a lower bound, which only *under*-charges the
    /// SCR arm — acceptable for a cost model, noted in DESIGN.md.
    fn sync_stale(&self, slot: FlowSlot, core: usize) -> u32 {
        let Some(r) = self.replicas.get(slot.index()) else {
            // Unreachable: grown to the interner's length before lookup.
            debug_assert!(false, "flow table not grown to slot {slot:?}");
            return 0;
        };
        (*r & !(1u64 << (core & 63))).count_ones()
    }

    /// SCR bookkeeping for an *accepted* dispatch of `slot` to `core`:
    /// record the touch and consolidate when `sync_every` is reached.
    /// Returns `(stale_replicas, consolidated)`; the stale count equals
    /// what [`FlowTable::sync_stale`] reported for the same dispatch
    /// (nothing runs between the stamp and the commit).
    fn sync_touch(&mut self, slot: FlowSlot, core: usize, sync_every: u32) -> (u32, bool) {
        let idx = slot.index();
        let (Some(r), Some(n)) = (self.replicas.get_mut(idx), self.since_sync.get_mut(idx)) else {
            // Unreachable: grown to the interner's length before lookup.
            debug_assert!(false, "flow table not grown to slot {slot:?}");
            return (0, false);
        };
        let bit = 1u64 << (core & 63);
        let stale = (*r & !bit).count_ones();
        *r |= bit;
        *n = n.saturating_add(1);
        if sync_every != 0 && *n >= sync_every {
            *r = bit;
            *n = 0;
            (stale, true)
        } else {
            (stale, false)
        }
    }

    /// Fetch-and-increment the flow's arrival sequence counter.
    fn next_seq(&mut self, slot: FlowSlot) -> u64 {
        match self.seq.get_mut(slot.index()) {
            Some(s) => {
                let v = *s;
                *s += 1;
                v
            }
            None => {
                // Unreachable: the table is grown to the interner's length
                // before any lookup.
                debug_assert!(false, "flow table not grown to slot {slot:?}");
                0
            }
        }
    }

    /// The core the flow's previous packet was enqueued to, if any.
    fn last_core(&self, slot: FlowSlot) -> Option<usize> {
        self.last_core
            .get(slot.index())
            .and_then(|&c| (c != NO_CORE).then_some(c as usize))
    }

    /// Record the core the flow's packet was just enqueued to.
    fn set_last_core(&mut self, slot: FlowSlot, core: usize) {
        if let Some(c) = self.last_core.get_mut(slot.index()) {
            *c = core as u32;
        } else {
            debug_assert!(false, "flow table not grown to slot {slot:?}");
        }
    }
}

#[derive(Debug)]
pub(super) struct DispatchStage<S> {
    scheduler: S,
    /// Per-flow state (arrival seq, last core), slot-indexed.
    flows: FlowTable,
    /// Per-core scheduler view, maintained **incrementally**: only the
    /// core an event touched is resynced (one entry per event instead of
    /// an `n_cores` rebuild per arrival), and the buffer itself is
    /// steady-state allocation-free.
    infos: Vec<QueueInfo>,
}

impl<S: Scheduler> DispatchStage<S> {
    pub(super) fn new(scheduler: S, infos: Vec<QueueInfo>) -> Self {
        DispatchStage {
            scheduler,
            flows: FlowTable::default(),
            infos,
        }
    }

    /// Ensure the flow table covers `n` interned flows.
    pub(super) fn grow_flows(&mut self, n: usize) {
        self.flows.grow_to(n);
    }

    /// Switch on the flow table's SCR replica-set columns. Called once
    /// at engine construction, before any flow is interned, and only
    /// when the policy opted into a priced sync model.
    pub(super) fn enable_sync(&mut self) {
        self.flows.sync = true;
    }

    /// SCR peek passthrough (see `FlowTable::sync_stale`).
    pub(super) fn sync_stale(&self, slot: FlowSlot, core: usize) -> u32 {
        self.flows.sync_stale(slot, core)
    }

    /// SCR bookkeeping passthrough (see `FlowTable::sync_touch`).
    pub(super) fn sync_touch(
        &mut self,
        slot: FlowSlot,
        core: usize,
        sync_every: u32,
    ) -> (u32, bool) {
        self.flows.sync_touch(slot, core, sync_every)
    }

    /// Fetch-and-increment the flow's arrival sequence counter.
    pub(super) fn next_seq(&mut self, slot: FlowSlot) -> u64 {
        self.flows.next_seq(slot)
    }

    /// The core the flow's previous packet was enqueued to, if any.
    pub(super) fn last_core(&self, slot: FlowSlot) -> Option<usize> {
        self.flows.last_core(slot)
    }

    /// Record the core the flow's packet was just enqueued to.
    pub(super) fn set_last_core(&mut self, slot: FlowSlot, core: usize) {
        self.flows.set_last_core(slot, core);
    }

    /// Start cache fills for the flow's table entries (batched mode:
    /// issued when the next arrival is known but not yet processed, so
    /// the fill has ~one inter-arrival gap of lead time).
    #[inline]
    pub(super) fn prefetch_flow(&self, slot: FlowSlot) {
        if let Some(s) = self.flows.seq.get(slot.index()) {
            crate::mem::prefetch_read(s);
        }
        if let Some(c) = self.flows.last_core.get(slot.index()) {
            crate::mem::prefetch_read(c);
        }
    }

    /// Ask the policy for a target core. The view is maintained
    /// incrementally (see [`DispatchStage::set_info`]); it is briefly
    /// moved out so the scheduler can borrow it alongside the policy.
    ///
    /// # Panics
    /// Panics if the policy returns a core index `>= n_cores`.
    pub(super) fn choose_core(
        &mut self,
        pkt: &PacketDesc,
        now: detsim::SimTime,
        n_cores: usize,
    ) -> usize {
        let infos = std::mem::take(&mut self.infos);
        let view = SystemView {
            now,
            queues: &infos,
        };
        let target = self.scheduler.schedule(pkt, &view);
        self.infos = infos;
        assert!(target < n_cores, "scheduler returned core {target}");
        target
    }

    /// Resync one core's view entry after the service stage mutated it.
    #[inline]
    pub(super) fn set_info(&mut self, core: usize, info: QueueInfo) {
        if let Some(slot) = self.infos.get_mut(core) {
            *slot = info;
        }
    }

    /// Congestion feedback passthrough to the policy.
    pub(super) fn on_drop(&mut self, pkt: &PacketDesc, core: usize) {
        self.scheduler.on_drop(pkt, core);
    }

    /// Fault passthrough: a core crashed; ask the policy to repair.
    pub(super) fn on_core_down(&mut self, core: usize) -> RepairOutcome {
        self.scheduler.on_core_down(core)
    }

    /// Fault passthrough: a core healed; the policy may re-grow onto it.
    pub(super) fn on_core_up(&mut self, core: usize) -> RepairOutcome {
        self.scheduler.on_core_up(core)
    }

    pub(super) fn name(&self) -> &str {
        self.scheduler.name()
    }

    pub(super) fn core_reallocations(&self) -> u64 {
        self.scheduler.core_reallocations()
    }

    /// Drain the policy's buffered [`SchedEvent`]s into `buf`.
    pub(super) fn drain_events_into(&mut self, buf: &mut Vec<SchedEvent>) {
        self.scheduler.drain_events(&mut |ev| buf.push(ev));
    }

    pub(super) fn scheduler_ref(&self) -> &S {
        &self.scheduler
    }

    pub(super) fn into_scheduler(self) -> S {
        self.scheduler
    }

    /// The maintained view, for invariant checking.
    #[cfg(feature = "invariants")]
    pub(super) fn infos(&self) -> &[QueueInfo] {
        &self.infos
    }
}
