//! Ingest stage: arrival generation and frame-manager admission.
//!
//! Owns the traffic sources (each with its private arrival-process RNG
//! stream), the flow interner, the control-plane classifier, and the
//! packet-ID counter. Per arrival it draws the next header, classifies
//! it (fast path vs. control-plane slow path), and assigns the global
//! packet ID; the inter-arrival gap draws for the *next* arrival also
//! come from here so the RNG stream per source is exactly the
//! pre-refactor sequence.

use crate::source::{RateSpec, SourceConfig, TrafficSource};
use detsim::{SeedSequence, SimTime};
use nphash::{FlowId, FlowInterner, FlowSlot};
use nptrace::PacketRecord;
use nptraffic::ServiceKind;
use rand::rngs::StdRng;
use rand::Rng;

/// Upper bound on the batched mode's per-source lookahead (the DPDK-style
/// burst size; the runtime cap is `EngineConfig::execution`).
pub(super) const MAX_BURST: usize = 32;

/// Per-source arrival lookahead ring for the batched execution mode.
///
/// Holds up to a burst of `(absolute arrival time, raw trace record)`
/// pairs drawn ahead of their processing time. Both draws touch only the
/// source's *private* RNG streams (gaps from the arrival stream, records
/// from the trace generator), so pre-drawing cannot perturb any other
/// source or the shared interner/classifier — those are resolved at
/// processing time by [`IngestStage::admit_record`].
#[derive(Debug)]
struct ArrivalBuf {
    /// Absolute arrival times; FIFO across `head..len`.
    times: [SimTime; MAX_BURST],
    /// Raw trace records paired with `times`.
    records: [PacketRecord; MAX_BURST],
    head: u8,
    len: u8,
    /// Time of the most recently drawn arrival — the conceptual "now" of
    /// the next gap draw (scalar draws gap `j+1` while processing
    /// arrival `j` at exactly this time).
    cursor: SimTime,
    /// The horizon-crossing gap has been drawn: the source's arrival
    /// stream is over and `cursor` is frozen (scalar draws that crossing
    /// gap too, then never touches the source again).
    exhausted: bool,
    /// Emulated event-queue sequence number of the head entry, assigned
    /// at exactly the scalar push point (meaningless while empty).
    head_seq: u64,
}

impl ArrivalBuf {
    fn new() -> Self {
        ArrivalBuf {
            times: [SimTime::ZERO; MAX_BURST],
            records: [PacketRecord { flow: 0, size: 0 }; MAX_BURST],
            head: 0,
            len: 0,
            cursor: SimTime::ZERO,
            exhausted: false,
            head_seq: 0,
        }
    }
}

/// A traffic source paired with its private arrival-process RNG stream
/// (keeping them in one slot makes per-source access a single bounds
/// check and rules out the two parallel arrays drifting apart).
#[derive(Debug)]
struct SourceSlot {
    source: TrafficSource,
    rng: StdRng,
}

/// A fast-path packet header admitted by the ingest stage.
#[derive(Debug, Clone, Copy)]
pub(super) struct Header {
    pub flow: FlowId,
    pub slot: FlowSlot,
    pub service: ServiceKind,
    pub size: u16,
    pub id: u64,
}

/// Outcome of admitting one arrival.
pub(super) enum Admission {
    /// The source index was invalid (flagged via `debug_assert`).
    Missing,
    /// The classifier diverted the packet to the control-plane slow path.
    SlowPath {
        /// Service of the diverted packet.
        service: ServiceKind,
    },
    /// A data-plane packet, ready for dispatch.
    FastPath(Header),
}

#[derive(Debug)]
pub(super) struct IngestStage {
    sources: Vec<SourceSlot>,
    /// Flow arena: FlowId → dense slot, assigned at first emission.
    interner: FlowInterner,
    classifier_rng: StdRng,
    next_packet_id: u64,
    scale: f64,
    control_plane_fraction: f64,
    /// Per-source flood multiplier (fault injection): drawn inter-arrival
    /// gaps are divided by this *after* sampling, so the RNG stream is
    /// byte-identical to an unflooded run. 1.0 = no flood.
    flood: Vec<f64>,
    /// Per-source arrival lookahead (batched mode; empty in scalar mode).
    bursts: Vec<ArrivalBuf>,
    /// Runtime burst cap (≤ [`MAX_BURST`]); 0 until `batch_init`.
    burst_cap: usize,
    /// SoA mirror of each buffer's head arrival time (`SimTime::MAX`
    /// when drained): the batched merge scans this flat array instead of
    /// calling into every `ArrivalBuf`, so re-deriving the arrival
    /// minimum after a pop touches `n_sources × 8` contiguous bytes.
    head_times: Vec<SimTime>,
    /// SoA mirror of each head's emulated heap seq, paired with
    /// `head_times` (stale while the matching time is `MAX`).
    head_seqs: Vec<u64>,
}

impl IngestStage {
    /// Build the stage. RNG streams derive from `seq` exactly as the
    /// monolithic engine did: `indexed_rng("source", i)` per source,
    /// `rng("fm-classifier")` for the classifier.
    pub(super) fn new(
        seq: &SeedSequence,
        sources: &[SourceConfig],
        period_compression: f64,
        scale: f64,
        control_plane_fraction: f64,
    ) -> Self {
        let sources_built: Vec<SourceSlot> = sources
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                let mut sc = sc.clone();
                if let RateSpec::HoltWinters(hw) = sc.rate {
                    sc.rate = RateSpec::HoltWinters(hw.with_period_compressed(period_compression));
                }
                SourceSlot {
                    source: TrafficSource::new(&sc),
                    rng: seq.indexed_rng("source", i),
                }
            })
            .collect();
        let n = sources_built.len();
        IngestStage {
            sources: sources_built,
            interner: FlowInterner::new(),
            classifier_rng: seq.rng("fm-classifier"),
            next_packet_id: 0,
            scale,
            control_plane_fraction,
            flood: vec![1.0; n],
            bursts: Vec::new(),
            burst_cap: 0,
            head_times: Vec::new(),
            head_seqs: Vec::new(),
        }
    }

    /// Number of configured sources.
    pub(super) fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// Packet IDs handed out so far.
    pub(super) fn next_packet_id(&self) -> u64 {
        self.next_packet_id
    }

    /// Flows interned so far (the flow table's required size).
    pub(super) fn flow_count(&self) -> usize {
        self.interner.len()
    }

    /// Admit one arrival from `src`: draw the header, classify it, and —
    /// for fast-path packets — assign the global packet ID.
    pub(super) fn admit(&mut self, src: usize) -> Admission {
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "arrival from unknown source {src}");
            return Admission::Missing;
        };
        let (flow, flow_slot, size) = slot.source.next_header_interned(&mut self.interner);
        let service = slot.source.service;
        // Frame-manager classification (Fig. 1): control-plane packets
        // take the slow path and never enter the data-plane scheduler.
        if self.control_plane_fraction > 0.0
            && self.classifier_rng.gen::<f64>() < self.control_plane_fraction
        {
            return Admission::SlowPath { service };
        }
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Admission::FastPath(Header {
            flow,
            slot: flow_slot,
            service,
            size,
            id,
        })
    }

    /// Draw the inter-arrival gap to `src`'s next packet. A flood factor
    /// compresses the gap after the draw (the RNG stream is untouched).
    pub(super) fn next_gap(&mut self, src: usize) -> Option<SimTime> {
        let scale = self.scale;
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "arrival from unknown source {src}");
            return None;
        };
        let gap = slot.source.draw_gap(scale, &mut slot.rng);
        let factor = self.flood.get(src).copied().unwrap_or(1.0);
        if factor != 1.0 && factor > 0.0 {
            Some(SimTime::from_nanos(
                (gap.as_nanos() as f64 / factor).max(1.0) as u64,
            ))
        } else {
            Some(gap)
        }
    }

    /// Set `src`'s flood multiplier (fault injection). `factor` > 1.0
    /// compresses inter-arrival gaps by that ratio; 1.0 restores the
    /// nominal rate. Non-positive factors are ignored.
    pub(super) fn set_flood(&mut self, src: usize, factor: f64) {
        if let Some(f) = self.flood.get_mut(src) {
            if factor > 0.0 {
                *f = factor;
            }
        }
    }

    /// Draw the initial inter-arrival gap of every source, in source
    /// order (the run loop's priming pass).
    pub(super) fn prime_gaps(&mut self) -> Vec<(usize, SimTime)> {
        let scale = self.scale;
        let mut primed = Vec::with_capacity(self.sources.len());
        for (i, slot) in self.sources.iter_mut().enumerate() {
            let gap = slot.source.draw_gap(scale, &mut slot.rng);
            primed.push((i, gap));
        }
        primed
    }

    /// Pre-draw `n` gaps and records per Constant-rate source (see
    /// [`TrafficSource::prestage`]); a construction-time affordance so
    /// benchmarks measure the engine, not the traffic model. No-op for
    /// `n == 0` and for Holt-Winters sources.
    pub(super) fn prestage_all(&mut self, n: usize) {
        let scale = self.scale;
        for slot in &mut self.sources {
            slot.source.prestage(n, scale, &mut slot.rng);
        }
    }

    /// Re-sample every source's rate law at time `now`.
    pub(super) fn refresh_rates(&mut self, now: SimTime) {
        for slot in &mut self.sources {
            slot.source.refresh_rate(now, &mut slot.rng);
        }
    }

    // ---- batched-mode arrival lookahead --------------------------------
    //
    // The batched engine pre-draws up to a burst of arrivals per source.
    // Legality: gap draws consume the source's private arrival RNG, and
    // that same stream is also consumed by `refresh_rates` (Holt-Winters
    // noise) — so a gap may be drawn early only if the scalar engine
    // would also have drawn it before the next pending rate update. The
    // refill loop enforces this with a strict `cursor < barrier` check;
    // the *first* draw of a refill is exempt because a refill only
    // happens at the exact simulation point where the scalar engine
    // performs that same draw (priming, or the arrival that emptied the
    // buffer), where no refresh can intervene.

    /// Prepare the per-source lookahead rings for a batched run.
    pub(super) fn batch_init(&mut self, cap: usize) {
        self.burst_cap = cap.clamp(1, MAX_BURST);
        debug_assert!(
            self.flood.iter().all(|&f| f == 1.0),
            "batched mode excludes fault-driven floods"
        );
        // Once-per-run setup before the event loop starts, not
        // per-packet work — the three allocations below are amortized
        // over the whole simulation.
        // npcheck: allow(blocking-hot-path) — once-per-run setup
        self.bursts = (0..self.sources.len()).map(|_| ArrivalBuf::new()).collect();
        // npcheck: allow(blocking-hot-path) — once-per-run setup
        self.head_times = vec![SimTime::MAX; self.sources.len()];
        // npcheck: allow(blocking-hot-path) — once-per-run setup
        self.head_seqs = vec![0; self.sources.len()];
    }

    /// Refill `src`'s lookahead buffer. Must only be called when the
    /// buffer is drained, at the scalar position of the next gap draw.
    ///
    /// `barrier` is the time of the next pending rate update (`MAX` if
    /// none): lookahead stops before any arrival whose gap the scalar
    /// engine would draw only after refreshing rates. `horizon` is the
    /// simulation duration: a gap landing past it consumes RNG (exactly
    /// as the scalar engine's unscheduled final arrival does) but ends
    /// the source's stream for good.
    ///
    /// Returns the number of arrivals buffered.
    pub(super) fn batch_refill(&mut self, src: usize, barrier: SimTime, horizon: SimTime) -> usize {
        let scale = self.scale;
        let cap = self.burst_cap;
        let Some(buf) = self.bursts.get_mut(src) else {
            debug_assert!(false, "refill of unknown source {src}");
            return 0;
        };
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "refill of unknown source {src}");
            return 0;
        };
        debug_assert_eq!(buf.head, buf.len, "refill with arrivals still pending");
        buf.head = 0;
        buf.len = 0;
        if buf.exhausted {
            return 0;
        }
        let mut force_first = true;
        while (buf.len as usize) < cap && (force_first || buf.cursor < barrier) {
            force_first = false;
            let gap = slot.source.draw_gap(scale, &mut slot.rng);
            let t = buf.cursor + gap;
            if t > horizon {
                // Scalar draws this gap too, then never schedules the
                // arrival — RNG consumed, no record drawn.
                buf.exhausted = true;
                break;
            }
            let rec = slot.source.next_record();
            // Start the slot-cache line fill now so the resolve at
            // processing time hits.
            slot.source.prefetch_slot(rec.flow);
            let i = buf.len as usize;
            if let (Some(ts), Some(rs)) = (buf.times.get_mut(i), buf.records.get_mut(i)) {
                *ts = t;
                *rs = rec;
            }
            buf.cursor = t;
            buf.len += 1;
        }
        let drawn = buf.len as usize;
        let head_t = if buf.len > 0 {
            buf.times.first().copied().unwrap_or(SimTime::MAX)
        } else {
            SimTime::MAX
        };
        if let Some(h) = self.head_times.get_mut(src) {
            *h = head_t;
        }
        drawn
    }

    /// True when `src`'s buffer is drained but its stream is not over —
    /// i.e. a refill is due at the current simulation point.
    pub(super) fn batch_needs_refill(&self, src: usize) -> bool {
        self.bursts
            .get(src)
            .is_some_and(|b| b.head == b.len && !b.exhausted)
    }

    /// The head arrival of `src`: `(time, emulated heap seq)`.
    pub(super) fn batch_head(&self, src: usize) -> Option<(SimTime, u64)> {
        let buf = self.bursts.get(src)?;
        if buf.head < buf.len {
            let t = buf.times.get(buf.head as usize).copied()?;
            Some((t, buf.head_seq))
        } else {
            None
        }
    }

    /// Record the emulated heap sequence number of `src`'s head arrival
    /// (assigned by the engine at the scalar push point).
    pub(super) fn batch_set_head_seq(&mut self, src: usize, seq: u64) {
        if let Some(buf) = self.bursts.get_mut(src) {
            buf.head_seq = seq;
        }
        if let Some(s) = self.head_seqs.get_mut(src) {
            *s = seq;
        }
    }

    /// Pop `src`'s head arrival record for processing.
    pub(super) fn batch_pop(&mut self, src: usize) -> Option<PacketRecord> {
        let buf = self.bursts.get_mut(src)?;
        if buf.head < buf.len {
            let rec = buf.records.get(buf.head as usize).copied()?;
            buf.head += 1;
            let head_t = if buf.head < buf.len {
                buf.times
                    .get(buf.head as usize)
                    .copied()
                    .unwrap_or(SimTime::MAX)
            } else {
                SimTime::MAX
            };
            if let Some(h) = self.head_times.get_mut(src) {
                *h = head_t;
            }
            Some(rec)
        } else {
            None
        }
    }

    /// The SoA head mirrors (`time, seq` per source) for the batched
    /// merge's arrival rescan. Times are `SimTime::MAX` for drained
    /// sources; the paired seq is stale (and must be ignored) there.
    pub(super) fn arrival_heads(&self) -> (&[SimTime], &[u64]) {
        (&self.head_times, &self.head_seqs)
    }

    /// Trace-local flow index of `src`'s buffered arrival `depth` slots
    /// past the head (0 = head), if present (prefetch planning only —
    /// does not consume anything).
    pub(super) fn batch_peek_flow(&self, src: usize, depth: u8) -> Option<u32> {
        let buf = self.bursts.get(src)?;
        let i = buf.head.checked_add(depth)?;
        if i < buf.len {
            buf.records.get(i as usize).map(|r| r.flow)
        } else {
            None
        }
    }

    /// The interned slot of `src`'s trace-local `flow`, if already
    /// resolved (read-only; used to prefetch flow-table lines).
    pub(super) fn cached_slot(&self, src: usize, flow: u32) -> Option<FlowSlot> {
        self.sources.get(src).and_then(|s| s.source.peek_slot(flow))
    }

    /// Admit one *pre-drawn* arrival record from `src`: resolve it
    /// against the shared interner, classify, and assign the packet ID.
    ///
    /// This is the shared-state half of [`IngestStage::admit`] and must
    /// run in event-processing order; together with the pre-drawn record
    /// it consumes exactly the draws `admit` would.
    pub(super) fn admit_record(&mut self, src: usize, rec: PacketRecord) -> Admission {
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "arrival from unknown source {src}");
            return Admission::Missing;
        };
        let (flow, flow_slot, size) = slot.source.resolve_record(rec, &mut self.interner);
        let service = slot.source.service;
        if self.control_plane_fraction > 0.0
            && self.classifier_rng.gen::<f64>() < self.control_plane_fraction
        {
            return Admission::SlowPath { service };
        }
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Admission::FastPath(Header {
            flow,
            slot: flow_slot,
            service,
            size,
            id,
        })
    }
}
