//! Ingest stage: arrival generation and frame-manager admission.
//!
//! Owns the traffic sources (each with its private arrival-process RNG
//! stream), the flow interner, the control-plane classifier, and the
//! packet-ID counter. Per arrival it draws the next header, classifies
//! it (fast path vs. control-plane slow path), and assigns the global
//! packet ID; the inter-arrival gap draws for the *next* arrival also
//! come from here so the RNG stream per source is exactly the
//! pre-refactor sequence.

use crate::source::{RateSpec, SourceConfig, TrafficSource};
use detsim::{SeedSequence, SimTime};
use nphash::{FlowId, FlowInterner, FlowSlot};
use nptraffic::ServiceKind;
use rand::rngs::StdRng;
use rand::Rng;

/// A traffic source paired with its private arrival-process RNG stream
/// (keeping them in one slot makes per-source access a single bounds
/// check and rules out the two parallel arrays drifting apart).
#[derive(Debug)]
struct SourceSlot {
    source: TrafficSource,
    rng: StdRng,
}

/// A fast-path packet header admitted by the ingest stage.
#[derive(Debug, Clone, Copy)]
pub(super) struct Header {
    pub flow: FlowId,
    pub slot: FlowSlot,
    pub service: ServiceKind,
    pub size: u16,
    pub id: u64,
}

/// Outcome of admitting one arrival.
pub(super) enum Admission {
    /// The source index was invalid (flagged via `debug_assert`).
    Missing,
    /// The classifier diverted the packet to the control-plane slow path.
    SlowPath {
        /// Service of the diverted packet.
        service: ServiceKind,
    },
    /// A data-plane packet, ready for dispatch.
    FastPath(Header),
}

#[derive(Debug)]
pub(super) struct IngestStage {
    sources: Vec<SourceSlot>,
    /// Flow arena: FlowId → dense slot, assigned at first emission.
    interner: FlowInterner,
    classifier_rng: StdRng,
    next_packet_id: u64,
    scale: f64,
    control_plane_fraction: f64,
    /// Per-source flood multiplier (fault injection): drawn inter-arrival
    /// gaps are divided by this *after* sampling, so the RNG stream is
    /// byte-identical to an unflooded run. 1.0 = no flood.
    flood: Vec<f64>,
}

impl IngestStage {
    /// Build the stage. RNG streams derive from `seq` exactly as the
    /// monolithic engine did: `indexed_rng("source", i)` per source,
    /// `rng("fm-classifier")` for the classifier.
    pub(super) fn new(
        seq: &SeedSequence,
        sources: &[SourceConfig],
        period_compression: f64,
        scale: f64,
        control_plane_fraction: f64,
    ) -> Self {
        let sources_built: Vec<SourceSlot> = sources
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                let mut sc = sc.clone();
                if let RateSpec::HoltWinters(hw) = sc.rate {
                    sc.rate = RateSpec::HoltWinters(hw.with_period_compressed(period_compression));
                }
                SourceSlot {
                    source: TrafficSource::new(&sc),
                    rng: seq.indexed_rng("source", i),
                }
            })
            .collect();
        let n = sources_built.len();
        IngestStage {
            sources: sources_built,
            interner: FlowInterner::new(),
            classifier_rng: seq.rng("fm-classifier"),
            next_packet_id: 0,
            scale,
            control_plane_fraction,
            flood: vec![1.0; n],
        }
    }

    /// Number of configured sources.
    pub(super) fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// Packet IDs handed out so far.
    pub(super) fn next_packet_id(&self) -> u64 {
        self.next_packet_id
    }

    /// Flows interned so far (the flow table's required size).
    pub(super) fn flow_count(&self) -> usize {
        self.interner.len()
    }

    /// Admit one arrival from `src`: draw the header, classify it, and —
    /// for fast-path packets — assign the global packet ID.
    pub(super) fn admit(&mut self, src: usize) -> Admission {
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "arrival from unknown source {src}");
            return Admission::Missing;
        };
        let (flow, flow_slot, size) = slot.source.next_header_interned(&mut self.interner);
        let service = slot.source.service;
        // Frame-manager classification (Fig. 1): control-plane packets
        // take the slow path and never enter the data-plane scheduler.
        if self.control_plane_fraction > 0.0
            && self.classifier_rng.gen::<f64>() < self.control_plane_fraction
        {
            return Admission::SlowPath { service };
        }
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Admission::FastPath(Header {
            flow,
            slot: flow_slot,
            service,
            size,
            id,
        })
    }

    /// Draw the inter-arrival gap to `src`'s next packet. A flood factor
    /// compresses the gap after the draw (the RNG stream is untouched).
    pub(super) fn next_gap(&mut self, src: usize) -> Option<SimTime> {
        let scale = self.scale;
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "arrival from unknown source {src}");
            return None;
        };
        let gap = slot.source.next_gap(scale, &mut slot.rng);
        let factor = self.flood.get(src).copied().unwrap_or(1.0);
        if factor != 1.0 && factor > 0.0 {
            Some(SimTime::from_nanos(
                (gap.as_nanos() as f64 / factor).max(1.0) as u64,
            ))
        } else {
            Some(gap)
        }
    }

    /// Set `src`'s flood multiplier (fault injection). `factor` > 1.0
    /// compresses inter-arrival gaps by that ratio; 1.0 restores the
    /// nominal rate. Non-positive factors are ignored.
    pub(super) fn set_flood(&mut self, src: usize, factor: f64) {
        if let Some(f) = self.flood.get_mut(src) {
            if factor > 0.0 {
                *f = factor;
            }
        }
    }

    /// Draw the initial inter-arrival gap of every source, in source
    /// order (the run loop's priming pass).
    pub(super) fn prime_gaps(&mut self) -> Vec<(usize, SimTime)> {
        let scale = self.scale;
        let mut primed = Vec::with_capacity(self.sources.len());
        for (i, slot) in self.sources.iter_mut().enumerate() {
            let gap = slot.source.next_gap(scale, &mut slot.rng);
            primed.push((i, gap));
        }
        primed
    }

    /// Re-sample every source's rate law at time `now`.
    pub(super) fn refresh_rates(&mut self, now: SimTime) {
        for slot in &mut self.sources {
            slot.source.refresh_rate(now, &mut slot.rng);
        }
    }
}
