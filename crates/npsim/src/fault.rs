//! Deterministic fault injection and graceful-degradation accounting.
//!
//! A [`FaultPlan`] is a stably time-sorted script of [`FaultAction`]s
//! (core crash/heal, throttle, transient stall, traffic flood) delivered
//! through the engine's deterministic event queue: the engine primes one
//! event per plan entry at start-up, so two runs with the same plan and
//! seed replay identically — faults are part of the simulation, not an
//! external perturbation.
//!
//! Degradation policy for full ingress queues is a [`DropPolicy`] knob;
//! the engine's fault-path counters land in [`FaultStats`] (embedded in
//! the report only when the fault machinery was active, so fault-free
//! reports serialize byte-identically to earlier versions). The
//! [`FaultProbe`] rides the probe bus and reconstructs the crash/heal
//! timeline plus per-crash recovery times.

use crate::event::SimEvent;
use crate::probe::Probe;
use detsim::{SimTime, TimedPlan};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt::Write as _;

/// One scripted fault (or repair) action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The core dies: its in-service packet and queued packets are lost
    /// (accounted as drops), and the scheduler is asked to repair.
    Crash {
        /// Core index.
        core: usize,
    },
    /// The core rejoins: the scheduler may re-grow onto it.
    Heal {
        /// Core index.
        core: usize,
    },
    /// The core slows down: service durations multiply by `factor`
    /// (`1.0` restores full speed; values < 1.0 model overclock).
    Throttle {
        /// Core index.
        core: usize,
        /// Service-duration multiplier (must be > 0).
        factor: f64,
    },
    /// The core stops *starting* new service for `duration` (an
    /// in-flight packet still completes); queued packets wait.
    Stall {
        /// Core index.
        core: usize,
        /// Stall length.
        duration: SimTime,
    },
    /// The source floods: its inter-arrival gaps divide by `factor`
    /// (drawn gaps are scaled *after* sampling, so per-source RNG
    /// streams are unchanged and non-flooded sources replay
    /// identically).
    Flood {
        /// Source index (into the engine's source list).
        source: usize,
        /// Rate multiplier (must be > 0; gaps divide by this).
        factor: f64,
    },
    /// The flood ends: the source's rate factor resets to 1.0.
    FloodEnd {
        /// Source index.
        source: usize,
    },
}

/// A deterministic, stably time-sorted fault script.
///
/// Built on [`detsim::TimedPlan`]: entries at the same instant fire in
/// insertion order (the event queue breaks time ties by insertion
/// sequence, and the plan is primed in order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    plan: TimedPlan<FaultAction>,
}

impl FaultPlan {
    /// An empty plan (no faults; the engine's fault machinery stays
    /// dormant and the run is byte-identical to a fault-free build).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary-order `(time, action)` pairs; entries are
    /// stably sorted by time.
    pub fn from_actions(actions: Vec<(SimTime, FaultAction)>) -> Self {
        FaultPlan {
            plan: TimedPlan::from_entries(actions),
        }
    }

    /// Schedule `action` at `at` (chainable).
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.plan.push(at, action);
        self
    }

    /// Schedule a core crash at `at` (chainable shorthand).
    pub fn crash(self, at: SimTime, core: usize) -> Self {
        self.at(at, FaultAction::Crash { core })
    }

    /// Schedule a core heal at `at` (chainable shorthand).
    pub fn heal(self, at: SimTime, core: usize) -> Self {
        self.at(at, FaultAction::Heal { core })
    }

    /// Schedule a throttle at `at` (chainable shorthand).
    pub fn throttle(self, at: SimTime, core: usize, factor: f64) -> Self {
        self.at(at, FaultAction::Throttle { core, factor })
    }

    /// Schedule a transient stall at `at` (chainable shorthand).
    pub fn stall(self, at: SimTime, core: usize, duration: SimTime) -> Self {
        self.at(at, FaultAction::Stall { core, duration })
    }

    /// Schedule a flood over `[at, until)` (chainable shorthand).
    pub fn flood(self, at: SimTime, until: SimTime, source: usize, factor: f64) -> Self {
        self.at(at, FaultAction::Flood { source, factor })
            .at(until, FaultAction::FloodEnd { source })
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The entry at `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<&(SimTime, FaultAction)> {
        self.plan.get(idx)
    }

    /// The sorted `(time, action)` entries.
    pub fn entries(&self) -> &[(SimTime, FaultAction)] {
        self.plan.entries()
    }

    /// Validate the plan against an engine shape: core and source
    /// indices in range, positive throttle/flood factors. Returns the
    /// first offending entry's description.
    pub fn validate(&self, n_cores: usize, n_sources: usize) -> Result<(), String> {
        for &(at, action) in self.plan.entries() {
            let bad_core = |c: usize| c >= n_cores;
            match action {
                FaultAction::Crash { core }
                | FaultAction::Heal { core }
                | FaultAction::Stall { core, .. }
                    if bad_core(core) =>
                {
                    // npcheck: allow(blocking-hot-path) — setup-time plan validation, runs once before the simulation
                    return Err(format!(
                        "fault at {at:?}: core {core} out of range (n_cores = {n_cores})"
                    ));
                }
                FaultAction::Throttle { core, factor } => {
                    if bad_core(core) {
                        // npcheck: allow(blocking-hot-path) — setup-time plan validation, runs once before the simulation
                        return Err(format!(
                            "fault at {at:?}: core {core} out of range (n_cores = {n_cores})"
                        ));
                    }
                    if factor <= 0.0 {
                        // npcheck: allow(blocking-hot-path) — setup-time plan validation, runs once before the simulation
                        return Err(format!("fault at {at:?}: throttle factor {factor} <= 0"));
                    }
                }
                FaultAction::Flood { source, factor } => {
                    if source >= n_sources {
                        // npcheck: allow(blocking-hot-path) — setup-time plan validation, runs once before the simulation
                        return Err(format!(
                            "fault at {at:?}: source {source} out of range (n_sources = {n_sources})"
                        ));
                    }
                    if factor <= 0.0 {
                        // npcheck: allow(blocking-hot-path) — setup-time plan validation, runs once before the simulation
                        return Err(format!("fault at {at:?}: flood factor {factor} <= 0"));
                    }
                }
                FaultAction::FloodEnd { source } if source >= n_sources => {
                    // npcheck: allow(blocking-hot-path) — setup-time plan validation, runs once before the simulation
                    return Err(format!(
                        "fault at {at:?}: source {source} out of range (n_sources = {n_sources})"
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// What the engine does when a packet targets a full ingress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Drop the arriving packet (the paper's model; the default, and
    /// byte-identical to the pre-fault engine).
    #[default]
    DropTail,
    /// Evict the oldest queued packet and admit the arrival — favors
    /// fresh packets at the cost of an extra reorder gap per eviction.
    DropHead,
    /// Hold the arrival in a per-core staging buffer (same capacity as
    /// the main queue) that refills the queue as service completes;
    /// only when staging is also full is the arrival dropped.
    Backpressure,
}

/// Fault-path counters, embedded in the report as
/// [`SimReport::faults`](crate::SimReport) when fault machinery was
/// active (a plan was configured or a non-default drop policy chosen).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Plan entries that fired.
    pub injected: u64,
    /// Core crashes applied.
    pub crashes: u64,
    /// Core heals applied.
    pub heals: u64,
    /// Packets lost to crashes (in-service + queued at crash time) or
    /// to arrivals with no live core left.
    pub fault_drops: u64,
    /// Arrivals redirected away from a dead core chosen by the
    /// scheduler (the engine's degradation path for unrepaired
    /// policies).
    pub redirects: u64,
    /// Crash/heal transitions the scheduler repaired (map-table
    /// shrink/re-grow).
    pub repairs: u64,
    /// Crash/heal transitions the scheduler honestly reported it could
    /// not repair (the engine keeps degrading via redirects).
    pub unrepaired: u64,
    /// Oldest-packet evictions under [`DropPolicy::DropHead`].
    pub head_drops: u64,
    /// Arrivals staged under [`DropPolicy::Backpressure`].
    pub backpressured: u64,
}

/// Probe-bus reconstruction of the fault timeline: crash/heal marks and
/// per-crash recovery spans (crash → heal → first post-heal service
/// start on that core).
#[derive(Debug, Default)]
pub struct FaultProbe {
    timeline: Vec<(SimTime, FaultMark)>,
    recoveries: Vec<Recovery>,
    /// Per-core index into `recoveries` of the still-open span.
    open: Vec<Option<usize>>,
}

/// One mark on the fault timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMark {
    /// A core crashed.
    Crash(usize),
    /// A core healed.
    Heal(usize),
}

/// One crash→heal→restart span for a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The crashed core.
    pub core: usize,
    /// When it crashed.
    pub crashed_at: SimTime,
    /// When it healed (None: still down at end of run).
    pub healed_at: Option<SimTime>,
    /// First service start after the heal (None: never served again).
    pub restarted_at: Option<SimTime>,
}

impl Recovery {
    /// Crash → heal, if the core healed.
    pub fn downtime(&self) -> Option<SimTime> {
        self.healed_at.map(|h| h - self.crashed_at)
    }

    /// Crash → first post-heal service start, if it happened — the
    /// experiment's "recovery time".
    pub fn recovery_time(&self) -> Option<SimTime> {
        self.restarted_at.map(|r| r - self.crashed_at)
    }
}

impl FaultProbe {
    /// An empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash/heal marks in publication order.
    pub fn timeline(&self) -> &[(SimTime, FaultMark)] {
        &self.timeline
    }

    /// Crash→heal→restart spans in crash order.
    pub fn recoveries(&self) -> &[Recovery] {
        &self.recoveries
    }

    /// Mean recovery time (crash → first post-heal service start) in
    /// nanoseconds over completed recoveries, if any completed.
    pub fn mean_recovery_ns(&self) -> Option<f64> {
        let done: Vec<u64> = self
            .recoveries
            .iter()
            .filter_map(|r| r.recovery_time().map(|t| t.as_nanos()))
            // npcheck: allow(blocking-hot-path) — end-of-run recovery statistics, not on the per-packet path
            .collect();
        if done.is_empty() {
            None
        } else {
            Some(done.iter().sum::<u64>() as f64 / done.len() as f64)
        }
    }

    /// Render as CSV: `core,crashed_ns,healed_ns,restarted_ns` (empty
    /// cells for spans that never healed/restarted).
    pub fn to_csv(&self) -> String {
        // npcheck: allow(blocking-hot-path) — end-of-run CSV rendering, not on the per-packet path
        let mut out = String::from("core,crashed_ns,healed_ns,restarted_ns\n");
        for r in &self.recoveries {
            // npcheck: allow(blocking-hot-path) — end-of-run CSV rendering, not on the per-packet path
            let healed = r.healed_at.map(|t| t.as_nanos().to_string());
            // npcheck: allow(blocking-hot-path) — end-of-run CSV rendering, not on the per-packet path
            let restarted = r.restarted_at.map(|t| t.as_nanos().to_string());
            let _ = writeln!(
                out,
                "{},{},{},{}",
                r.core,
                r.crashed_at.as_nanos(),
                healed.unwrap_or_default(),
                restarted.unwrap_or_default()
            );
        }
        out
    }

    fn ensure_core(&mut self, core: usize) {
        if core >= self.open.len() {
            self.open.resize(core + 1, None);
        }
    }
}

impl Probe for FaultProbe {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn on_event(&mut self, now: SimTime, ev: &SimEvent) {
        match *ev {
            SimEvent::CoreCrashed { core } => {
                self.ensure_core(core);
                self.timeline.push((now, FaultMark::Crash(core)));
                self.recoveries.push(Recovery {
                    core,
                    crashed_at: now,
                    healed_at: None,
                    restarted_at: None,
                });
                if let Some(slot) = self.open.get_mut(core) {
                    *slot = Some(self.recoveries.len() - 1);
                }
            }
            SimEvent::CoreHealed { core } => {
                self.ensure_core(core);
                self.timeline.push((now, FaultMark::Heal(core)));
                let idx = self.open.get(core).copied().flatten();
                if let Some(r) = idx.and_then(|i| self.recoveries.get_mut(i)) {
                    r.healed_at = Some(now);
                }
            }
            SimEvent::ServiceStart { core, .. } => {
                let idx = self.open.get(core).copied().flatten();
                if let Some(i) = idx {
                    if let Some(r) = self.recoveries.get_mut(i) {
                        if r.healed_at.is_some() && r.restarted_at.is_none() {
                            r.restarted_at = Some(now);
                            if let Some(slot) = self.open.get_mut(core) {
                                *slot = None;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptraffic::ServiceKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn plan_sorts_stably_and_validates() {
        let plan = FaultPlan::new()
            .heal(t(50), 2)
            .crash(t(10), 2)
            .throttle(t(10), 1, 2.0);
        let kinds: Vec<_> = plan.entries().iter().map(|&(at, a)| (at, a)).collect();
        assert_eq!(kinds[0], (t(10), FaultAction::Crash { core: 2 }));
        assert_eq!(
            kinds[1],
            (
                t(10),
                FaultAction::Throttle {
                    core: 1,
                    factor: 2.0
                }
            )
        );
        assert_eq!(kinds[2], (t(50), FaultAction::Heal { core: 2 }));
        assert!(plan.validate(4, 1).is_ok());
        assert!(
            plan.validate(2, 1).is_err(),
            "core 2 out of range for 2 cores"
        );
        let bad = FaultPlan::new().throttle(t(1), 0, 0.0);
        assert!(bad.validate(4, 1).is_err(), "zero factor rejected");
        let flood = FaultPlan::new().flood(t(1), t(2), 3, 4.0);
        assert!(flood.validate(1, 1).is_err(), "source 3 out of range");
        assert!(flood.validate(1, 4).is_ok());
    }

    #[test]
    fn fault_probe_tracks_recovery_spans() {
        let mut p = FaultProbe::new();
        let start = |core| SimEvent::ServiceStart {
            core,
            service: ServiceKind::IpForward,
            cold: false,
            migrated: false,
            duration: t(1),
        };
        p.on_event(t(5), &start(3)); // pre-crash start: ignored
        p.on_event(t(10), &SimEvent::CoreCrashed { core: 3 });
        p.on_event(t(20), &SimEvent::CoreHealed { core: 3 });
        p.on_event(t(22), &start(1)); // other core: ignored
        p.on_event(t(25), &start(3)); // closes the span
        p.on_event(t(30), &start(3)); // after close: ignored
        assert_eq!(p.timeline().len(), 2);
        assert_eq!(p.recoveries().len(), 1);
        let r = p.recoveries()[0];
        assert_eq!(r.downtime(), Some(t(10)));
        assert_eq!(r.recovery_time(), Some(t(15)));
        assert_eq!(p.mean_recovery_ns(), Some(15_000.0));
        assert!(p.to_csv().contains("3,10000,20000,25000"));
    }

    #[test]
    fn fault_probe_handles_unhealed_crash() {
        let mut p = FaultProbe::new();
        p.on_event(t(10), &SimEvent::CoreCrashed { core: 0 });
        let r = p.recoveries()[0];
        assert_eq!(r.downtime(), None);
        assert_eq!(r.recovery_time(), None);
        assert_eq!(p.mean_recovery_ns(), None);
        assert!(p.to_csv().contains("0,10000,,"));
    }
}
