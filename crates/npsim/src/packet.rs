//! Packet descriptors.

use detsim::SimTime;
use nphash::{FlowId, FlowSlot};
use nptraffic::ServiceKind;

/// A packet descriptor, as the frame manager would hand it to the
/// scheduler: header-derived identity plus bookkeeping the simulation
/// needs to measure reordering and penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketDesc {
    /// Globally unique packet id (assignment order).
    pub id: u64,
    /// The 5-tuple flow this packet belongs to.
    pub flow: FlowId,
    /// The flow's dense arena slot (see [`nphash::FlowInterner`]): the
    /// hash-free key for all per-flow state on the packet path.
    pub slot: FlowSlot,
    /// Which service must process it.
    pub service: ServiceKind,
    /// Size in bytes (drives path-1/path-4 processing time).
    pub size: u16,
    /// Arrival (scheduling) time.
    pub arrival: SimTime,
    /// Per-flow arrival sequence number (0-based) — the reference order
    /// for reordering measurement.
    pub flow_seq: u64,
    /// Whether dispatch moved this flow to a different core than its
    /// previous packet used (incurs the FM penalty when processed).
    pub migrated: bool,
    /// State-sync surcharge in nanoseconds, added to this packet's
    /// service time (SCR cost model: per-stale-replica retrieval cost,
    /// stamped at dispatch). Always 0 outside the `scr-*` family.
    pub sync_debt_ns: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_is_plain_data() {
        let p = PacketDesc {
            id: 1,
            flow: FlowId::from_index(3),
            slot: FlowSlot::new(0),
            service: ServiceKind::IpForward,
            size: 64,
            arrival: SimTime::from_micros(5),
            flow_seq: 0,
            migrated: false,
            sync_debt_ns: 0,
        };
        let q = p;
        assert_eq!(p, q);
    }
}
