//! Egress order restoration.
//!
//! The paper's related work (§VI) contrasts order *preservation* (LAPS)
//! with order *restoration* (Shi et al., INFOCOM 2007): let cores process
//! packets of a flow in parallel and re-sequence them in an egress buffer
//! before they leave the system. The paper argues restoration "can have
//! considerable storage overheads" — this module implements the
//! restoration buffer so that claim can be measured (see the
//! `restoration` experiment binary).
//!
//! Semantics: packets of a flow are released in arrival-sequence order.
//! A packet whose predecessors are still in flight waits in the buffer.
//! Gaps from *dropped* predecessors are closed by the frame manager's
//! drop notification ([`RestorationBuffer::note_gap`]); as a safety net,
//! a buffered packet older than `timeout` forces the sequence window
//! past the missing predecessors.

use crate::packet::PacketDesc;
use detsim::{Histogram, SimTime};
use nphash::det::{det_map, DetHashMap};
use nphash::FlowSlot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cumulative restoration statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RestorationStats {
    /// Packets that had to wait in the buffer.
    pub buffered: u64,
    /// Packets released immediately (already in order).
    pub pass_through: u64,
    /// Releases forced by the timeout safety net.
    pub timeout_releases: u64,
    /// Highest simultaneous buffer occupancy.
    pub peak_occupancy: usize,
    /// Time spent waiting in the buffer (ns samples).
    pub buffer_wait: Histogram,
}

/// The egress re-sequencing buffer.
#[derive(Debug)]
pub struct RestorationBuffer {
    timeout: SimTime,
    /// Next sequence number each flow is allowed to release, keyed by
    /// the flow's dense arena slot.
    next_expected: DetHashMap<FlowSlot, u64>,
    /// Ingress-dropped sequence numbers ahead of the window: the window
    /// skips them when in-order progress reaches them. A timeout release
    /// prunes entries the jump passed, so a late drop notification can
    /// never advance the window a second time.
    pending_gaps: DetHashMap<FlowSlot, std::collections::BTreeSet<u64>>,
    /// Held packets: flow slot → seq → (packet, buffered_at).
    held: DetHashMap<FlowSlot, BTreeMap<u64, (PacketDesc, SimTime)>>,
    occupancy: usize,
    stats: RestorationStats,
}

impl RestorationBuffer {
    /// A buffer that force-releases after `timeout`.
    pub fn new(timeout: SimTime) -> Self {
        RestorationBuffer {
            timeout,
            next_expected: det_map(),
            pending_gaps: det_map(),
            held: det_map(),
            occupancy: 0,
            stats: RestorationStats::default(),
        }
    }

    /// Current number of packets waiting.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &RestorationStats {
        &self.stats
    }

    /// Consume the buffer, returning its final statistics.
    pub fn into_stats(self) -> RestorationStats {
        self.stats
    }

    /// The frame manager dropped `(flow, seq)` at ingress: that sequence
    /// number will never arrive, so releases must not wait for it.
    pub fn note_gap(&mut self, slot: FlowSlot, seq: u64, now: SimTime) -> Vec<PacketDesc> {
        let expected = *self.next_expected.get(&slot).unwrap_or(&0);
        if seq < expected {
            // The window already passed this position (a timeout release
            // jumped over it): advancing again would swallow a live
            // successor, so a late notification is a no-op.
            return Vec::new();
        }
        self.pending_gaps.entry(slot).or_default().insert(seq);
        self.drain_ready(slot, now)
    }

    /// A packet finished processing at `now`. Returns every packet that
    /// can now be released, in order.
    pub fn on_departure(&mut self, pkt: PacketDesc, now: SimTime) -> Vec<PacketDesc> {
        let expected = *self.next_expected.get(&pkt.slot).unwrap_or(&0);
        if pkt.flow_seq < expected {
            // Predecessor of an already-released (or gap-skipped)
            // position: emit immediately, it is late but holding it helps
            // nobody.
            self.stats.pass_through += 1;
            return vec![pkt];
        }
        if pkt.flow_seq == expected {
            self.stats.pass_through += 1;
            self.next_expected.insert(pkt.slot, expected + 1);
            let mut out = vec![pkt];
            out.extend(self.drain_ready(pkt.slot, now));
            return out;
        }
        // Out of order: hold it.
        self.stats.buffered += 1;
        self.held
            .entry(pkt.slot)
            .or_default()
            .insert(pkt.flow_seq, (pkt, now));
        self.occupancy += 1;
        if self.occupancy > self.stats.peak_occupancy {
            self.stats.peak_occupancy = self.occupancy;
        }
        Vec::new()
    }

    /// Advance `flow`'s window through held packets and notified drop
    /// gaps alike: a held packet at the window edge is released, a
    /// pending gap at the edge is skipped, in whatever order they
    /// interleave.
    fn drain_ready(&mut self, slot: FlowSlot, now: SimTime) -> Vec<PacketDesc> {
        let mut out = Vec::new();
        loop {
            let expected = self.next_expected.entry(slot).or_insert(0);
            if let Some(gaps) = self.pending_gaps.get_mut(&slot) {
                if gaps.remove(&*expected) {
                    *expected += 1;
                    continue;
                }
            }
            let Some(q) = self.held.get_mut(&slot) else {
                break;
            };
            match q.iter().next() {
                Some((&seq, _)) if seq == *expected => {
                    let (pkt, since) = q.remove(&seq).expect("peeked");
                    self.occupancy -= 1;
                    self.stats
                        .buffer_wait
                        .record((now.saturating_sub(since)).as_nanos());
                    *expected += 1;
                    out.push(pkt);
                }
                _ => break,
            }
        }
        if self.held.get(&slot).is_some_and(|q| q.is_empty()) {
            self.held.remove(&slot);
        }
        if self.pending_gaps.get(&slot).is_some_and(|g| g.is_empty()) {
            self.pending_gaps.remove(&slot);
        }
        out
    }

    /// Force-release any packet buffered longer than the timeout,
    /// advancing the window past missing predecessors. Returns the
    /// released packets (in per-flow order).
    pub fn flush_timeouts(&mut self, now: SimTime) -> Vec<PacketDesc> {
        let mut out = Vec::new();
        let flows: Vec<FlowSlot> = self.held.keys().copied().collect();
        for slot in flows {
            let expired = {
                let q = &self.held[&slot];
                q.iter()
                    .next()
                    .map(|(_, (_, since))| now.saturating_sub(*since) >= self.timeout)
                    .unwrap_or(false)
            };
            if !expired {
                continue;
            }
            // Jump the window to the oldest held packet and drain. The
            // jump consumed every position behind it, so prune pending
            // gaps the window passed: a late drop notification for one
            // of them must not advance the window again.
            let q = self.held.get_mut(&slot).expect("present");
            let (&seq, _) = q.iter().next().expect("non-empty");
            self.next_expected.insert(slot, seq);
            if let Some(gaps) = self.pending_gaps.get_mut(&slot) {
                *gaps = gaps.split_off(&seq);
            }
            self.stats.timeout_releases += 1;
            out.extend(self.drain_ready(slot, now));
        }
        out
    }

    /// Release everything (end of simulation), in per-flow order.
    pub fn drain_all(&mut self, now: SimTime) -> Vec<PacketDesc> {
        let mut out = Vec::new();
        let flows: Vec<FlowSlot> = self.held.keys().copied().collect();
        for slot in flows {
            // A flow may hold interior gaps (e.g. seqs {5, 7}); jump the
            // window over each gap until the flow's queue is empty.
            while let Some(q) = self.held.get_mut(&slot) {
                let Some((&seq, _)) = q.iter().next() else {
                    break;
                };
                self.next_expected.insert(slot, seq);
                out.extend(self.drain_ready(slot, now));
            }
        }
        self.pending_gaps.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nphash::FlowId;
    use nptraffic::ServiceKind;

    fn pkt(flow: u64, seq: u64) -> PacketDesc {
        PacketDesc {
            id: seq,
            flow: FlowId::from_index(flow),
            slot: FlowSlot::new(flow as u32),
            service: ServiceKind::IpForward,
            size: 64,
            arrival: SimTime::ZERO,
            flow_seq: seq,
            migrated: false,
            sync_debt_ns: 0,
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn in_order_passes_through() {
        let mut b = RestorationBuffer::new(t(100));
        for seq in 0..5 {
            let out = b.on_departure(pkt(1, seq), t(seq));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].flow_seq, seq);
        }
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.stats().buffered, 0);
    }

    #[test]
    fn out_of_order_is_held_then_released_in_order() {
        let mut b = RestorationBuffer::new(t(100));
        assert!(b.on_departure(pkt(1, 2), t(0)).is_empty());
        assert!(b.on_departure(pkt(1, 1), t(1)).is_empty());
        assert_eq!(b.occupancy(), 2);
        // Seq 0 arrives: everything drains, ordered.
        let out = b.on_departure(pkt(1, 0), t(2));
        let seqs: Vec<u64> = out.iter().map(|p| p.flow_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.stats().buffered, 2);
        assert_eq!(b.stats().peak_occupancy, 2);
    }

    #[test]
    fn flows_are_independent() {
        let mut b = RestorationBuffer::new(t(100));
        assert!(b.on_departure(pkt(1, 1), t(0)).is_empty());
        let out = b.on_departure(pkt(2, 0), t(0));
        assert_eq!(out.len(), 1, "flow 2 unaffected by flow 1's gap");
    }

    #[test]
    fn drop_notification_closes_gap() {
        let mut b = RestorationBuffer::new(t(100));
        assert!(b.on_departure(pkt(1, 1), t(0)).is_empty());
        // Seq 0 was dropped at ingress: the note releases seq 1.
        let out = b.note_gap(FlowSlot::new(1), 0, t(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flow_seq, 1);
    }

    #[test]
    fn timeout_forces_release() {
        let mut b = RestorationBuffer::new(t(10));
        assert!(b.on_departure(pkt(1, 3), t(0)).is_empty());
        assert!(b.flush_timeouts(t(5)).is_empty(), "not yet expired");
        let out = b.flush_timeouts(t(10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flow_seq, 3);
        assert_eq!(b.stats().timeout_releases, 1);
        // The window advanced: seq 4 now passes straight through.
        assert_eq!(b.on_departure(pkt(1, 4), t(11)).len(), 1);
        // …and a very late seq 2 is emitted immediately rather than held.
        assert_eq!(b.on_departure(pkt(1, 2), t(12)).len(), 1);
    }

    #[test]
    fn drop_before_timeout_does_not_double_advance() {
        // Seq 1 dropped at ingress (notified ahead of the window), seq 2
        // held, seq 0 still in flight. The timeout jumps the window to 2
        // and releases it; the already-notified gap at 1 was consumed by
        // the jump, so the window must land exactly on 3 — not 4.
        let mut b = RestorationBuffer::new(t(10));
        assert!(b.note_gap(FlowSlot::new(1), 1, t(0)).is_empty());
        assert!(b.on_departure(pkt(1, 2), t(0)).is_empty());
        let out = b.flush_timeouts(t(10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flow_seq, 2);
        assert_eq!(b.stats().timeout_releases, 1);
        // Seq 3 is now the exact window edge: it must pass through AND
        // advance the window (a double-advanced window at 4 would also
        // emit it, but as a late pass-through leaving 4 expected).
        assert!(b.on_departure(pkt(1, 4), t(11)).is_empty(), "4 is early");
        let out = b.on_departure(pkt(1, 3), t(12));
        let seqs: Vec<u64> = out.iter().map(|p| p.flow_seq).collect();
        assert_eq!(seqs, vec![3, 4], "window was at 3, not past it");
    }

    #[test]
    fn drop_notification_after_timeout_release_is_ignored() {
        // Seq 1 held; the timeout jumps the window past missing seq 0.
        let mut b = RestorationBuffer::new(t(10));
        assert!(b.on_departure(pkt(1, 1), t(0)).is_empty());
        let out = b.flush_timeouts(t(10));
        assert_eq!(out.len(), 1);
        // Now the late drop notification for seq 0 arrives. The window
        // already passed it: no second advance.
        assert!(b.note_gap(FlowSlot::new(1), 0, t(11)).is_empty());
        // Seq 3 must still wait for seq 2 (double-advance would have
        // moved the window to 3 and released it immediately).
        assert!(b.on_departure(pkt(1, 3), t(12)).is_empty());
        assert_eq!(b.occupancy(), 1);
        let out = b.on_departure(pkt(1, 2), t(13));
        let seqs: Vec<u64> = out.iter().map(|p| p.flow_seq).collect();
        assert_eq!(seqs, vec![2, 3]);
    }

    #[test]
    fn gap_ahead_of_window_is_remembered_and_skipped_in_order() {
        // Seq 2 dropped while the window is still at 0: when in-order
        // progress reaches 2 the hole closes without any timeout.
        let mut b = RestorationBuffer::new(t(1_000));
        assert!(b.note_gap(FlowSlot::new(1), 2, t(0)).is_empty());
        assert!(b.on_departure(pkt(1, 3), t(0)).is_empty());
        assert_eq!(b.on_departure(pkt(1, 0), t(1)).len(), 1);
        let out = b.on_departure(pkt(1, 1), t(2));
        let seqs: Vec<u64> = out.iter().map(|p| p.flow_seq).collect();
        assert_eq!(seqs, vec![1, 3], "the notified hole at 2 is skipped");
        assert_eq!(b.stats().timeout_releases, 0, "no safety net needed");
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn drain_all_releases_everything_in_flow_order() {
        let mut b = RestorationBuffer::new(t(1_000));
        b.on_departure(pkt(1, 5), t(0));
        b.on_departure(pkt(1, 7), t(0));
        b.on_departure(pkt(2, 3), t(0));
        let out = b.drain_all(t(1));
        assert_eq!(out.len(), 3);
        assert_eq!(b.occupancy(), 0);
        // Per-flow order is preserved in the drain.
        let f1: Vec<u64> = out
            .iter()
            .filter(|p| p.flow == FlowId::from_index(1))
            .map(|p| p.flow_seq)
            .collect();
        assert_eq!(f1, vec![5, 7]);
    }

    #[test]
    fn wait_time_is_recorded() {
        let mut b = RestorationBuffer::new(t(100));
        b.on_departure(pkt(1, 1), t(0));
        let out = b.on_departure(pkt(1, 0), t(30));
        assert_eq!(out.len(), 2);
        assert_eq!(b.stats().buffer_wait.count(), 1);
        assert_eq!(b.stats().buffer_wait.max(), t(30).as_nanos());
    }
}
