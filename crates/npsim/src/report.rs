//! Simulation reports — the numbers behind every figure.

use crate::fault::FaultStats;
use detsim::{Histogram, SimTime};
use serde::{Deserialize, Serialize, Value};

/// Per-service counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceBreakdown {
    /// Packets offered (generated) for this service.
    pub offered: u64,
    /// Packets dropped at full queues.
    pub dropped: u64,
    /// Packets fully processed.
    pub processed: u64,
    /// Out-of-order departures.
    pub out_of_order: u64,
}

/// State-Compute Replication accounting: what the SCR sync-cost model
/// charged over the run. Present only when an `scr-*` policy ran with a
/// non-zero `DelayModel::sync_cost_us`; every other run omits the block
/// entirely (same wire contract as [`FaultStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncStats {
    /// Packets that paid a non-zero sync surcharge (their flow's state
    /// was stale on at least one other core at dispatch time).
    pub sync_packets: u64,
    /// Total service-time surcharge in nanoseconds across those packets
    /// — the run's aggregate state-sync overhead.
    pub sync_extra_ns: u64,
    /// Replica-set consolidations performed (`SyncPolicy::sync_every`
    /// reached: the flow's state was re-mastered on one core).
    pub consolidations: u64,
}

/// The complete result of one simulation run.
///
/// `Serialize` is hand-written (not derived) for one reason: the
/// `faults` and `sync` fields must be *omitted* — not emitted as `null`
/// — when no fault plan / SCR sync model ran, so reports from ordinary
/// runs stay byte-identical to the pre-fault golden fixtures. The
/// derive has no `skip_serializing_if`; keep the manual impl's field
/// list in sync with the struct, in declaration order.
#[derive(Debug, Clone, Deserialize)]
pub struct SimReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Simulated horizon (arrivals stop here).
    pub duration: SimTime,
    /// Time of the last departure (≥ `duration` when queues drained past
    /// the horizon). Utilization is measured against this.
    pub end_time: SimTime,
    /// Rate/time scale factor used.
    pub scale: f64,
    /// Packets offered by all sources.
    pub offered: u64,
    /// Packets dropped (full target queue).
    pub dropped: u64,
    /// Packets fully processed (departed).
    pub processed: u64,
    /// Out-of-order departures.
    pub out_of_order: u64,
    /// Packets that paid the flow-migration penalty.
    pub migrated_packets: u64,
    /// Distinct flow-migration events (a flow's packets moving to a new
    /// core) — the Fig. 9(c) metric.
    pub migration_events: u64,
    /// Packets that paid the cold-I-cache penalty.
    pub cold_starts: u64,
    /// Per-service breakdowns, indexed by `ServiceKind::index()`.
    pub per_service: [ServiceBreakdown; 4],
    /// Packet latency (arrival → departure), nanoseconds.
    pub latency: Histogram,
    /// Cores requested by the scheduler beyond its initial allocation
    /// (LAPS `request_core` count; 0 for baselines).
    pub core_reallocations: u64,
    /// Egress order-restoration statistics, when the engine ran with a
    /// restoration buffer (`EngineConfig::restoration`).
    pub restoration: Option<crate::restore::RestorationStats>,
    /// Per-core busy time in nanoseconds (time spent processing packets)
    /// — the raw input to any power/energy model.
    pub core_busy_ns: Vec<u64>,
    /// Packets the frame-manager classifier diverted to the slow path
    /// (control plane, §II / Fig. 1); they never reach the data-plane
    /// scheduler and are excluded from `offered`.
    pub slow_path: u64,
    /// Discrete events dispatched by the run loop (arrivals, service
    /// completions, rate updates) — identical across event-queue
    /// backends; the denominator-free half of the events/sec metric.
    pub events: u64,
    /// Fault-injection and degradation accounting; `None` when the run
    /// had no fault plan and the default drop policy (and the key is
    /// then omitted from serialized reports entirely).
    pub faults: Option<FaultStats>,
    /// SCR state-sync accounting; `None` — and omitted from serialized
    /// reports — unless the policy opted into a sync model
    /// (`Scheduler::sync_policy`) *and* the delay model prices it.
    pub sync: Option<SyncStats>,
}

impl Serialize for SimReport {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("scheduler".to_string(), self.scheduler.to_value()),
            ("duration".to_string(), self.duration.to_value()),
            ("end_time".to_string(), self.end_time.to_value()),
            ("scale".to_string(), self.scale.to_value()),
            ("offered".to_string(), self.offered.to_value()),
            ("dropped".to_string(), self.dropped.to_value()),
            ("processed".to_string(), self.processed.to_value()),
            ("out_of_order".to_string(), self.out_of_order.to_value()),
            (
                "migrated_packets".to_string(),
                self.migrated_packets.to_value(),
            ),
            (
                "migration_events".to_string(),
                self.migration_events.to_value(),
            ),
            ("cold_starts".to_string(), self.cold_starts.to_value()),
            ("per_service".to_string(), self.per_service.to_value()),
            ("latency".to_string(), self.latency.to_value()),
            (
                "core_reallocations".to_string(),
                self.core_reallocations.to_value(),
            ),
            ("restoration".to_string(), self.restoration.to_value()),
            ("core_busy_ns".to_string(), self.core_busy_ns.to_value()),
            ("slow_path".to_string(), self.slow_path.to_value()),
            ("events".to_string(), self.events.to_value()),
        ];
        if let Some(f) = &self.faults {
            fields.push(("faults".to_string(), f.to_value()));
        }
        if let Some(s) = &self.sync {
            fields.push(("sync".to_string(), s.to_value()));
        }
        Value::Object(fields)
    }
}

impl SimReport {
    /// A zeroed report for `scheduler`.
    pub fn new(scheduler: impl Into<String>, duration: SimTime, scale: f64) -> Self {
        SimReport {
            scheduler: scheduler.into(),
            end_time: duration,
            duration,
            scale,
            offered: 0,
            dropped: 0,
            processed: 0,
            out_of_order: 0,
            migrated_packets: 0,
            migration_events: 0,
            cold_starts: 0,
            per_service: Default::default(),
            latency: Histogram::new(),
            core_reallocations: 0,
            restoration: None,
            core_busy_ns: Vec::new(),
            slow_path: 0,
            events: 0,
            faults: None,
            sync: None,
        }
    }

    /// The per-service counters of `service` (the hot-path-safe way to
    /// reach `per_service`: `ServiceKind::index()` is 0..4 and the array
    /// has exactly one slot per kind, so no packet-path indexing panic
    /// is possible through this accessor).
    pub fn service_mut(&mut self, service: nptraffic::ServiceKind) -> &mut ServiceBreakdown {
        let idx = service.index().min(self.per_service.len() - 1);
        // npcheck: allow(hot-path-panic) — idx clamped to the array above
        &mut self.per_service[idx]
    }

    /// Fraction of offered packets dropped — Fig. 7(a) / Fig. 9(a).
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Fraction of processed packets departing out of order — Fig. 7(c) /
    /// Fig. 9(b).
    pub fn ooo_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.out_of_order as f64 / self.processed as f64
        }
    }

    /// Fraction of processed packets paying the cold-cache penalty —
    /// Fig. 7(b).
    pub fn cold_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.processed as f64
        }
    }

    /// Achieved throughput in Mpps at *paper scale* (processed packets ÷
    /// duration, multiplied back by the scale factor).
    pub fn throughput_mpps(&self) -> f64 {
        let us = self.duration.as_micros_f64();
        if us == 0.0 {
            0.0
        } else {
            self.processed as f64 / us * self.scale
        }
    }

    /// Mean packet latency in µs (at simulation scale).
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// Mean utilization across cores (busy time ÷ wall time to the last
    /// departure), 0..1.
    pub fn mean_utilization(&self) -> f64 {
        if self.core_busy_ns.is_empty() || self.end_time == SimTime::ZERO {
            return 0.0;
        }
        let total: u64 = self.core_busy_ns.iter().sum();
        total as f64 / (self.end_time.as_nanos() as f64 * self.core_busy_ns.len() as f64)
    }

    /// Number of cores whose busy fraction exceeds `threshold` — a proxy
    /// for "cores that could not have been powered down".
    pub fn active_cores(&self, threshold: f64) -> usize {
        let dur = self.end_time.as_nanos() as f64;
        if dur == 0.0 {
            return 0;
        }
        self.core_busy_ns
            .iter()
            .filter(|&&b| b as f64 / dur > threshold)
            .count()
    }

    /// Sanity: offered = dropped + processed + still-in-flight. Exposed
    /// for tests; `in_flight` is whatever remained queued/being processed
    /// at the horizon.
    pub fn accounted(&self) -> u64 {
        self.dropped + self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptraffic::ServiceKind;

    #[test]
    fn fractions_handle_zero_denominators() {
        let r = SimReport::new("x", SimTime::ZERO, 1.0);
        assert_eq!(r.drop_fraction(), 0.0);
        assert_eq!(r.ooo_fraction(), 0.0);
        assert_eq!(r.cold_fraction(), 0.0);
        assert_eq!(r.throughput_mpps(), 0.0);
    }

    #[test]
    fn throughput_unscales() {
        let mut r = SimReport::new("x", SimTime::from_secs(1), 50.0);
        r.processed = 1_000_000; // 1 Mp in 1 s at scale 50 → 0.05 Mpps × 50 = 50...
                                 // 1e6 packets / 1e6 µs = 1 pkt/µs = 1 Mpps at sim scale → ×50 = 50 Mpps.
        assert!((r.throughput_mpps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sync_block_omitted_when_none() {
        let mut r = SimReport::new("x", SimTime::ZERO, 1.0);
        let v = r.to_value();
        assert!(v.get("sync").is_none(), "None must omit the key, not null");
        assert!(v.get("faults").is_none());
        r.sync = Some(SyncStats {
            sync_packets: 3,
            sync_extra_ns: 900,
            consolidations: 1,
        });
        let v = r.to_value();
        let s = v.get("sync").expect("Some serializes the block");
        assert_eq!(s.get("sync_packets"), Some(&Value::U64(3)));
        let back = SimReport::from_value(&v).expect("round trip");
        assert_eq!(back.sync, r.sync);
    }

    #[test]
    fn per_service_indexing() {
        let mut r = SimReport::new("x", SimTime::ZERO, 1.0);
        r.per_service[ServiceKind::MalwareScan.index()].offered = 7;
        assert_eq!(r.per_service[2].offered, 7);
    }
}
