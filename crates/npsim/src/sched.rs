//! The scheduler interface and two trivial reference policies.
//!
//! The engine calls [`Scheduler::schedule`] once per arriving packet with
//! a read-only [`SystemView`] of the queue state; the scheduler answers
//! with a target core index. Everything else (drop on full queue, penalty
//! accounting, reorder measurement) is engine-side, so policies compare
//! on identical footing.

use crate::packet::PacketDesc;
use detsim::SimTime;

/// Read-only, per-core queue state exposed to schedulers.
#[derive(Debug, Clone, Copy)]
pub struct QueueInfo {
    /// Current queue occupancy (packets waiting, excluding the one in
    /// service).
    pub len: usize,
    /// Queue capacity (32 descriptors in the paper).
    pub capacity: usize,
    /// Whether the core is currently processing a packet.
    pub busy: bool,
    /// Since when the core has been completely idle (empty queue, not
    /// busy); `None` while it has work. Drives the surplus-core timer.
    pub idle_since: Option<SimTime>,
    /// Last time this core's queue built beyond the engine's congestion
    /// watermark (or a packet was dropped at it). A core whose queue has
    /// not congested for `idle_th` has spare capacity — the surplus-core
    /// eligibility signal (§III-D; see DESIGN.md for the interpretation).
    pub last_congested: SimTime,
    /// Whether the core is alive. `false` after a fault-plan crash and
    /// until the matching heal; view helpers skip dead cores, so
    /// load-driven policies degrade around failures automatically.
    pub up: bool,
}

/// Snapshot of system state at a scheduling decision.
#[derive(Debug)]
pub struct SystemView<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// Per-core queue state, indexed by core.
    pub queues: &'a [QueueInfo],
}

impl SystemView<'_> {
    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.queues.len()
    }

    /// The core with the shortest queue among the *live* cores of
    /// `cores` (ties to the lowest index). `None` if `cores` is empty or
    /// every listed core is down.
    pub fn min_queue_core(&self, cores: &[usize]) -> Option<usize> {
        cores
            .iter()
            .copied()
            .filter(|&c| self.queues[c].up)
            .min_by_key(|&c| (self.queues[c].len, c))
    }

    /// The queue length of the longest queue among `cores` (0 if empty).
    pub fn max_queue_len(&self, cores: &[usize]) -> usize {
        cores.iter().map(|&c| self.queues[c].len).max().unwrap_or(0)
    }

    /// The core with the shortest queue among **all live** cores (ties
    /// to the lowest index). Unlike [`SystemView::min_queue_core`], this
    /// needs no core-index slice, so per-packet callers allocate
    /// nothing. `None` when every core is down.
    pub fn min_queue_core_all(&self) -> Option<usize> {
        // Manual strict-less scan (first minimum wins, i.e. ties go to
        // the lowest index, same as `min_by_key` over `(len, c)`): this
        // runs once per packet, and the simple loop compiles to a tight
        // compare-and-select over the queue slice.
        let mut best = None;
        let mut best_len = usize::MAX;
        for (c, q) in self.queues.iter().enumerate() {
            if q.up && q.len < best_len {
                best = Some(c);
                best_len = q.len;
            }
        }
        best
    }
}

/// A policy-internal state transition the engine republishes on the
/// observability bus. Core parking is a *scheduler* decision (LAPS
/// §III-D surplus cores), invisible to the engine's own state machine,
/// so policies that park report it through this side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// The policy parked a surplus core.
    CoreParked {
        /// The parked core.
        core: usize,
    },
    /// The policy woke a parked core.
    CoreUnparked {
        /// The woken core.
        core: usize,
    },
}

/// A policy's answer to a core-failure (or heal) notification: did it
/// restructure its own dispatch state so traffic stops targeting the
/// dead core (resp. flows back onto the healed one)?
///
/// `Unrepaired` is an *honest* answer, not an error: stateless policies
/// (round-robin) and policies whose view already skips dead cores (JSQ)
/// have nothing to restructure, and the engine keeps degrading for them
/// by redirecting arrivals away from dead cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The policy restructured its dispatch state (e.g. shrank the
    /// owning service's map table so only the failed core's flows
    /// migrate).
    Repaired,
    /// The policy cannot (or need not) repair; the engine's redirect
    /// path carries the degradation.
    Unrepaired,
}

/// How the engine models state synchronization for a State-Compute
/// Replication policy (arXiv 2309.14647): a policy that opts in (via
/// [`Scheduler::sync_policy`]) may send a flow's packets to *any* core,
/// and each packet pays a per-stale-replica service-time surcharge
/// (priced by `DelayModel::sync_cost_us`) for every other core holding
/// the flow's state since its last consolidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncPolicy {
    /// Consolidate a flow's replica set back to the current core after
    /// this many dispatched packets (`0` = never consolidate: the
    /// replica set only grows).
    pub sync_every: u32,
}

/// A packet-scheduling policy.
pub trait Scheduler {
    /// Display name used in reports and figures.
    fn name(&self) -> &str;

    /// Choose the target core for `pkt`. Must return an index
    /// `< view.n_cores()`; the engine will enqueue (or drop, if that
    /// core's queue is full).
    fn schedule(&mut self, pkt: &PacketDesc, view: &SystemView<'_>) -> usize;

    /// Called when the engine drops a packet this scheduler dispatched to
    /// a full queue (some policies react to congestion feedback).
    fn on_drop(&mut self, _pkt: &PacketDesc, _core: usize) {}

    /// How many extra-core requests (`request_core()`) the policy issued;
    /// 0 for policies without dynamic core allocation.
    fn core_reallocations(&self) -> u64 {
        0
    }

    /// Enable or disable the [`SchedEvent`] feed. The engine switches it
    /// on only when probes are attached, so policies that buffer events
    /// pay nothing on the zero-probe fast path. Default: ignored
    /// (policies without parkable cores have nothing to report).
    fn set_event_feed(&mut self, _enabled: bool) {}

    /// Drain buffered [`SchedEvent`]s, in occurrence order, into `sink`.
    /// Called by the engine after each scheduling decision while the
    /// feed is enabled. Default: no events.
    fn drain_events(&mut self, _sink: &mut dyn FnMut(SchedEvent)) {}

    /// The engine crashed `core` (fault injection). The policy should
    /// repair its dispatch state so no new packet targets the dead core
    /// — ideally migrating only the flows resident on it — and report
    /// whether it did. Default: honestly unrepaired.
    fn on_core_down(&mut self, _core: usize) -> RepairOutcome {
        RepairOutcome::Unrepaired
    }

    /// The engine healed `core`; the policy may re-grow onto it
    /// (ideally restoring exactly the flows that left at crash time).
    /// Default: honestly unrepaired.
    fn on_core_up(&mut self, _core: usize) -> RepairOutcome {
        RepairOutcome::Unrepaired
    }

    /// The policy's SCR sync model, if it is a State-Compute Replication
    /// policy. `None` (the default, and the answer of every LAPS-family
    /// and baseline policy) keeps the engine's replica-set bookkeeping
    /// completely off the packet path — the same zero-cost-when-off
    /// contract as probes and fault plans.
    fn sync_policy(&self) -> Option<SyncPolicy> {
        None
    }
}

impl<T: Scheduler + ?Sized> Scheduler for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn schedule(&mut self, pkt: &PacketDesc, view: &SystemView<'_>) -> usize {
        (**self).schedule(pkt, view)
    }
    fn on_drop(&mut self, pkt: &PacketDesc, core: usize) {
        (**self).on_drop(pkt, core)
    }
    fn core_reallocations(&self) -> u64 {
        (**self).core_reallocations()
    }
    fn set_event_feed(&mut self, enabled: bool) {
        (**self).set_event_feed(enabled)
    }
    fn drain_events(&mut self, sink: &mut dyn FnMut(SchedEvent)) {
        (**self).drain_events(sink)
    }
    fn on_core_down(&mut self, core: usize) -> RepairOutcome {
        (**self).on_core_down(core)
    }
    fn on_core_up(&mut self, core: usize) -> RepairOutcome {
        (**self).on_core_up(core)
    }
    fn sync_policy(&self) -> Option<SyncPolicy> {
        (**self).sync_policy()
    }
}

/// Round-robin dispatch, ignoring both flows and load. The simplest
/// possible baseline; destroys flow locality completely.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn schedule(&mut self, _pkt: &PacketDesc, view: &SystemView<'_>) -> usize {
        let c = self.next % view.n_cores();
        self.next = (self.next + 1) % view.n_cores();
        c
    }
}

/// Join-the-shortest-queue dispatch — the paper's **FCFS** baseline:
/// "FCFS and AFS distribute packets of different services arbitrarily to
/// cores". Perfect load balance, zero flow/service awareness.
#[derive(Debug, Default)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// A fresh JSQ scheduler.
    pub fn new() -> Self {
        JoinShortestQueue
    }
}

impl Scheduler for JoinShortestQueue {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn schedule(&mut self, _pkt: &PacketDesc, view: &SystemView<'_>) -> usize {
        // Allocation-free: this runs once per packet.
        view.min_queue_core_all().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nphash::{FlowId, FlowSlot};
    use nptraffic::ServiceKind;

    fn pkt() -> PacketDesc {
        PacketDesc {
            id: 0,
            flow: FlowId::from_index(1),
            slot: FlowSlot::new(0),
            service: ServiceKind::IpForward,
            size: 64,
            arrival: SimTime::ZERO,
            flow_seq: 0,
            migrated: false,
            sync_debt_ns: 0,
        }
    }

    fn view(lens: &[usize]) -> Vec<QueueInfo> {
        lens.iter()
            .map(|&len| QueueInfo {
                len,
                capacity: 32,
                busy: len > 0,
                idle_since: None,
                last_congested: SimTime::ZERO,
                up: true,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles() {
        let qs = view(&[0, 0, 0]);
        let v = SystemView {
            now: SimTime::ZERO,
            queues: &qs,
        };
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|_| rr.schedule(&pkt(), &v)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_picks_shortest_with_tie_to_lowest() {
        let qs = view(&[3, 1, 1, 5]);
        let v = SystemView {
            now: SimTime::ZERO,
            queues: &qs,
        };
        let mut jsq = JoinShortestQueue::new();
        assert_eq!(jsq.schedule(&pkt(), &v), 1);
    }

    #[test]
    fn view_helpers() {
        let qs = view(&[3, 1, 4, 0]);
        let v = SystemView {
            now: SimTime::ZERO,
            queues: &qs,
        };
        assert_eq!(v.n_cores(), 4);
        assert_eq!(v.min_queue_core(&[0, 2]), Some(0));
        assert_eq!(v.min_queue_core(&[]), None);
        assert_eq!(v.max_queue_len(&[0, 1, 2, 3]), 4);
        assert_eq!(v.min_queue_core_all(), Some(3));
    }

    #[test]
    fn view_helpers_skip_dead_cores() {
        let mut qs = view(&[3, 1, 4, 0]);
        qs[3].up = false; // the global minimum is down
        qs[1].up = false; // and so is the runner-up slice pick
        let v = SystemView {
            now: SimTime::ZERO,
            queues: &qs,
        };
        assert_eq!(v.min_queue_core_all(), Some(0));
        assert_eq!(v.min_queue_core(&[1, 2]), Some(2));
        assert_eq!(v.min_queue_core(&[1, 3]), None, "all listed cores down");
        let mut jsq = JoinShortestQueue::new();
        assert_eq!(jsq.schedule(&pkt(), &v), 0, "JSQ degrades around faults");
    }

    #[test]
    fn default_sync_policy_is_none_and_box_forwards() {
        let rr = RoundRobin::new();
        assert_eq!(rr.sync_policy(), None, "baselines never opt into SCR");
        struct Scrish;
        impl Scheduler for Scrish {
            fn name(&self) -> &str {
                "scrish"
            }
            fn schedule(&mut self, _p: &PacketDesc, _v: &SystemView<'_>) -> usize {
                0
            }
            fn sync_policy(&self) -> Option<SyncPolicy> {
                Some(SyncPolicy { sync_every: 8 })
            }
        }
        let boxed: Box<dyn Scheduler> = Box::new(Scrish);
        assert_eq!(boxed.sync_policy(), Some(SyncPolicy { sync_every: 8 }));
    }

    #[test]
    fn default_repair_hooks_are_honestly_unrepaired() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.on_core_down(1), RepairOutcome::Unrepaired);
        assert_eq!(rr.on_core_up(1), RepairOutcome::Unrepaired);
        let mut boxed: Box<dyn Scheduler> = Box::new(JoinShortestQueue::new());
        assert_eq!(boxed.on_core_down(0), RepairOutcome::Unrepaired);
    }
}
