//! Cache-warming helper for the miss-heavy hot-path tables.
//!
//! At production trace scale the per-flow arrays are large — the flow
//! table, order tracker, and slot caches together span ~1 MB for a
//! 40k-flow caida preset — so nearly every per-packet access misses L2.
//! The batched engine knows which flows it will touch a little ahead of
//! time and wants to start those fills early.
//!
//! npsim is `#![forbid(unsafe_code)]`, so there is no `_mm_prefetch`
//! here. Instead a *dead load* through `std::hint::black_box` touches
//! the line: an out-of-order core treats a load whose value nothing
//! consumes exactly like a software prefetch — the cache fill starts
//! immediately and no later instruction waits on it — which is all the
//! engine needs to overlap the miss with the burst's other work.

/// Touch the cache line holding `r` without using its value.
#[inline(always)]
pub(crate) fn prefetch_read<T: Copy>(r: &T) {
    let _ = std::hint::black_box(*r);
}
