//! The typed simulation-event stream (the observability bus payload).
//!
//! Every stage of the engine pipeline — ingest, dispatch, service,
//! record — publishes its state transitions as [`SimEvent`] values. The
//! record stage folds them into the [`SimReport`](crate::SimReport)
//! (always, statically) and forwards them to any attached
//! [`Probe`](crate::Probe)s (only when probes are attached; the
//! zero-probe engine compiles the forwarding away entirely).
//!
//! Events are small `Copy` values carrying indices and scalars only — no
//! owned data — so publishing one is a register move, never an
//! allocation. The taxonomy mirrors the paper's measurement axes:
//! arrivals and drops (Fig. 7's loss), migrations and reorderings
//! (Figs. 7–9), service occupancy (utilization / power), and the LAPS
//! park/unpark transitions (§III-D surplus cores).

use detsim::SimTime;
use nphash::FlowSlot;
use nptraffic::ServiceKind;

/// One state transition inside the simulation pipeline.
///
/// Published in causal order at each virtual-time instant: for an
/// arrival, `PacketArrived` → (`Dispatched` + `Migration` | `Dropped`)
/// → `ServiceStart` (if the core was free); for a completion,
/// `ServiceEnd` → `Departure` (+ `ReorderDetected`) → `ServiceStart` of
/// the next queued packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A packet entered the data plane from a traffic source.
    PacketArrived {
        /// Globally unique packet ID (arrival order).
        id: u64,
        /// Dense flow arena slot.
        slot: FlowSlot,
        /// Service the packet requests.
        service: ServiceKind,
        /// Wire size in bytes.
        size: u16,
    },
    /// The frame-manager classifier diverted a packet to the
    /// control-plane slow path; it never reaches the scheduler.
    DivertedSlowPath {
        /// Service of the diverted packet.
        service: ServiceKind,
    },
    /// The scheduler placed a packet on a core's input queue.
    Dispatched {
        /// Packet ID.
        id: u64,
        /// Flow slot.
        slot: FlowSlot,
        /// Service.
        service: ServiceKind,
        /// Target core.
        core: usize,
        /// Queue occupancy *after* the enqueue.
        queue_len: usize,
        /// Whether this dispatch moved the flow off its previous core.
        migrated: bool,
    },
    /// A flow's packet was enqueued to a different core than the flow's
    /// previous packet (the paper's migration event). Published once per
    /// migrating dispatch, alongside `Dispatched`.
    Migration {
        /// Flow slot.
        slot: FlowSlot,
        /// Core the flow's previous packet used.
        from: usize,
        /// Core this packet was dispatched to.
        to: usize,
    },
    /// A packet hit a full input queue and was dropped.
    Dropped {
        /// Packet ID.
        id: u64,
        /// Flow slot.
        slot: FlowSlot,
        /// Service.
        service: ServiceKind,
        /// Core whose queue was full.
        core: usize,
    },
    /// A core began servicing a packet.
    ServiceStart {
        /// The core.
        core: usize,
        /// Service being executed.
        service: ServiceKind,
        /// Whether the core's instruction cache was cold (previous packet
        /// belonged to a different service — Eq. 3's 10 µs penalty).
        cold: bool,
        /// Whether the packet had migrated (Eq. 3's 0.8 µs penalty).
        migrated: bool,
        /// Total service duration, penalties included.
        duration: SimTime,
    },
    /// A core finished servicing a packet.
    ServiceEnd {
        /// The core.
        core: usize,
        /// Service that just completed.
        service: ServiceKind,
    },
    /// A packet left the system (after order restoration, if enabled).
    Departure {
        /// Packet ID.
        id: u64,
        /// Flow slot.
        slot: FlowSlot,
        /// Service.
        service: ServiceKind,
        /// Arrival-to-departure latency in nanoseconds.
        latency_ns: u64,
        /// Whether the departure was out of order for its flow.
        out_of_order: bool,
    },
    /// A departure arrived behind a higher-sequence packet of the same
    /// flow (RFC 4737 reordered singleton). Published alongside the
    /// corresponding `Departure { out_of_order: true }`.
    ReorderDetected {
        /// Flow slot.
        slot: FlowSlot,
        /// Arrival sequence of the late packet.
        flow_seq: u64,
        /// How many sequence numbers late it was.
        extent: u64,
    },
    /// The scheduling policy parked a surplus core (LAPS §III-D).
    CoreParked {
        /// The parked core.
        core: usize,
    },
    /// The scheduling policy woke a parked core.
    CoreUnparked {
        /// The woken core.
        core: usize,
    },
    /// A fault-plan crash killed a core: its in-service and queued
    /// packets were dropped, and the scheduler was asked to repair.
    CoreCrashed {
        /// The crashed core.
        core: usize,
    },
    /// A fault-plan heal brought a crashed core back.
    CoreHealed {
        /// The healed core.
        core: usize,
    },
    /// A periodic rate-update tick fired (sources re-sampled their rate
    /// laws). Marks epoch boundaries for time-bucketed probes.
    EpochTick,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_copy_values() {
        // The bus publishes by value on the hot path; keep the payload a
        // couple of machine words.
        assert!(std::mem::size_of::<SimEvent>() <= 48);
        let e = SimEvent::EpochTick;
        let f = e; // Copy
        assert_eq!(e, f);
    }
}
