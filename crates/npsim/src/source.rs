//! Traffic sources: per-service packet generation.
//!
//! Each source couples a *header stream* (an `nptrace` generator, standing
//! in for the real trace the paper replays) with an *arrival process*
//! (constant rate, or the Holt-Winters model of Eq. 1). Rates are in Mpps
//! at paper scale; the engine divides by the configured scale factor.

use detsim::SimTime;
use nphash::{FlowId, FlowInterner, FlowSlot};
use nptrace::{TraceGenerator, TracePreset};
use nptraffic::{HoltWinters, ServiceKind};
use rand::rngs::StdRng;
use rand::Rng;

/// The arrival-rate law of a source.
#[derive(Debug, Clone, Copy)]
pub enum RateSpec {
    /// Fixed rate in Mpps (used by the single-service Fig. 9 experiments).
    Constant(f64),
    /// The Holt-Winters model of Eq. 1 (Fig. 7 experiments).
    HoltWinters(HoltWinters),
}

impl RateSpec {
    /// Sample the instantaneous rate (Mpps) at `t`.
    pub fn rate_at(&self, t: SimTime, rng: &mut StdRng) -> f64 {
        match self {
            RateSpec::Constant(r) => *r,
            RateSpec::HoltWinters(hw) => hw.rate(t.as_secs_f64(), rng),
        }
    }

    /// The noise-free rate at `t` (capacity estimates, tests).
    pub fn mean_rate_at(&self, t: SimTime) -> f64 {
        match self {
            RateSpec::Constant(r) => *r,
            RateSpec::HoltWinters(hw) => hw.mean_rate(t.as_secs_f64()),
        }
    }
}

/// Configuration of one traffic source.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// The service whose packets this source emits.
    pub service: ServiceKind,
    /// The trace preset providing headers.
    pub trace: TracePreset,
    /// The arrival-rate law.
    pub rate: RateSpec,
}

/// A running source: header generator + arrival state.
#[derive(Debug)]
pub struct TrafficSource {
    /// The service of every packet from this source.
    pub service: ServiceKind,
    gen: TraceGenerator,
    rate: RateSpec,
    /// Rate currently in force (Mpps, unscaled), refreshed periodically.
    current_rate: f64,
    /// Global [`FlowSlot`] of each trace-local flow index, `u32::MAX` =
    /// not yet interned. The trace generator hands out *dense* per-trace
    /// flow indices, so after a flow's first packet every later packet
    /// resolves its slot with one `Vec` access — zero hash probes.
    slot_cache: Vec<u32>,
    /// Pre-staged inter-arrival gaps (raw draws, pre-flood), consumed
    /// FIFO by [`TrafficSource::draw_gap`] before any live draw. See
    /// [`TrafficSource::prestage`].
    staged_gaps: Vec<SimTime>,
    gap_cursor: usize,
    /// Pre-staged trace records, consumed FIFO by
    /// [`TrafficSource::next_record`] before any live draw.
    staged_records: Vec<nptrace::PacketRecord>,
    rec_cursor: usize,
}

/// Sentinel in `slot_cache`: this trace-local flow has no global slot yet.
const UNINTERNED: u32 = u32::MAX;

impl TrafficSource {
    /// Instantiate from configuration. `trace_len` bounds the streaming
    /// generator's internal state (headers repeat after the underlying
    /// model cycles, mirroring the paper's trace replay).
    pub fn new(cfg: &SourceConfig) -> Self {
        // Streaming generator; the length hint is irrelevant for
        // streaming use.
        let gen = cfg.trace.generator(0);
        TrafficSource {
            service: cfg.service,
            gen,
            rate: cfg.rate,
            current_rate: cfg.rate.mean_rate_at(SimTime::ZERO),
            slot_cache: Vec::new(),
            staged_gaps: Vec::new(),
            gap_cursor: 0,
            staged_records: Vec::new(),
            rec_cursor: 0,
        }
    }

    /// Pre-draw up to `n` inter-arrival gaps and `n` trace records into
    /// staging buffers, so the run-time draw cost collapses to a cursor
    /// advance (the benchmark's way of measuring the engine instead of
    /// the synthetic traffic model).
    ///
    /// Byte-identity argument: gaps consume only this source's private
    /// arrival RNG and records only the trace generator's private RNG,
    /// in exactly the orders the live draws would — and for a
    /// [`RateSpec::Constant`] source the rate in force never changes and
    /// rate refreshes consume no RNG, so values drawn at construction
    /// equal values drawn mid-run. Holt-Winters sources interleave rate
    /// noise on the arrival stream, so pre-drawing is refused (returns
    /// `false`, a no-op).
    pub fn prestage(&mut self, n: usize, scale: f64, rng: &mut StdRng) -> bool {
        if n == 0 || !matches!(self.rate, RateSpec::Constant(_)) {
            return false;
        }
        debug_assert!(
            self.staged_gaps.is_empty() && self.gap_cursor == 0,
            "prestage must happen before any draw"
        );
        // npcheck: allow(blocking-hot-path) — construction-time staging, before the run
        self.staged_gaps = (0..n).map(|_| self.next_gap(scale, rng)).collect();
        // npcheck: allow(blocking-hot-path) — construction-time staging, before the run
        self.staged_records = (0..n).map(|_| self.gen.next_packet()).collect();
        true
    }

    /// Draw the next inter-arrival gap, consuming the staged buffer
    /// first. All engine-side gap draws go through this so staged and
    /// live draws form one seamless stream.
    #[inline]
    pub fn draw_gap(&mut self, scale: f64, rng: &mut StdRng) -> SimTime {
        match self.staged_gaps.get(self.gap_cursor) {
            Some(&g) => {
                self.gap_cursor += 1;
                g
            }
            None => self.next_gap(scale, rng),
        }
    }

    /// Refresh the rate in force at time `t` (noise drawn from `rng`).
    pub fn refresh_rate(&mut self, t: SimTime, rng: &mut StdRng) {
        self.current_rate = self.rate.rate_at(t, rng);
    }

    /// The rate currently in force, Mpps (unscaled).
    pub fn current_rate(&self) -> f64 {
        self.current_rate
    }

    /// Draw the next inter-arrival gap given scale factor `scale`
    /// (exponential with mean `scale / rate` µs).
    pub fn next_gap(&self, scale: f64, rng: &mut StdRng) -> SimTime {
        let rate_pp_us = (self.current_rate / scale).max(1e-9);
        let u: f64 = rng.gen::<f64>().max(1e-300);
        SimTime::from_micros_f64(-u.ln() / rate_pp_us)
    }

    /// Draw the next packet header `(flow, size)`.
    pub fn next_header(&mut self) -> (FlowId, u16) {
        let space = self.gen.flow_space();
        let p = self.gen.next_packet();
        (p.flow_id(space), p.size)
    }

    /// Draw the next raw packet record from the header stream.
    ///
    /// The header stream consumes only the trace generator's private RNG
    /// — it is independent of the arrival-gap stream and of every shared
    /// engine structure — so the batched execution mode may draw records
    /// *ahead* of their processing time and resolve them later with
    /// [`TrafficSource::resolve_record`] without perturbing replay.
    #[inline]
    pub fn next_record(&mut self) -> nptrace::PacketRecord {
        match self.staged_records.get(self.rec_cursor) {
            Some(&r) => {
                self.rec_cursor += 1;
                r
            }
            None => self.gen.next_packet(),
        }
    }

    /// Resolve a record drawn by [`TrafficSource::next_record`] against
    /// the shared interner: `(flow, slot, size)`.
    ///
    /// Must be called in arrival-processing order — the slot cache and
    /// the cross-source interner are order-sensitive. The scalar path's
    /// [`TrafficSource::next_header_interned`] is exactly `next_record`
    /// followed by `resolve_record`, which is what makes the batched
    /// engine's split byte-identical.
    pub fn resolve_record(
        &mut self,
        p: nptrace::PacketRecord,
        interner: &mut FlowInterner,
    ) -> (FlowId, FlowSlot, u16) {
        let space = self.gen.flow_space();
        let local = p.flow as usize;
        if local >= self.slot_cache.len() {
            self.slot_cache.resize(local + 1, UNINTERNED);
        }
        match self.slot_cache.get_mut(local) {
            Some(cached) if *cached != UNINTERNED => {
                let slot = FlowSlot::new(*cached);
                // The interner resolves a slot with one array access —
                // cheaper than re-deriving the FlowId from the header.
                match interner.resolve(slot) {
                    Some(flow) => (flow, slot, p.size),
                    None => (p.flow_id(space), slot, p.size),
                }
            }
            cached => {
                let flow = p.flow_id(space);
                let slot = interner.intern(flow);
                if let Some(c) = cached {
                    *c = slot.raw();
                }
                (flow, slot, p.size)
            }
        }
    }

    /// The interned slot of trace-local `flow`, if its first packet has
    /// already been resolved. A read-only probe (no interning): the
    /// batched engine uses it to prefetch flow-table lines for arrivals
    /// that are buffered but not yet processed.
    #[inline]
    pub fn peek_slot(&self, flow: u32) -> Option<FlowSlot> {
        match self.slot_cache.get(flow as usize) {
            Some(&raw) if raw != UNINTERNED => Some(FlowSlot::new(raw)),
            _ => None,
        }
    }

    /// Best-effort software prefetch of the slot-cache entry for `flow`,
    /// issued at burst-refill time so the resolve at processing time
    /// finds the line in cache.
    #[inline]
    pub fn prefetch_slot(&self, flow: u32) {
        if let Some(cached) = self.slot_cache.get(flow as usize) {
            crate::mem::prefetch_read(cached);
        }
    }

    /// Draw the next packet header with its interned arena slot:
    /// `(flow, slot, size)`.
    ///
    /// Only the *first* packet of each flow pays an interner probe; every
    /// repeat resolves through the per-source slot cache (a plain `Vec`
    /// lookup on the trace's dense flow index).
    pub fn next_header_interned(&mut self, interner: &mut FlowInterner) -> (FlowId, FlowSlot, u16) {
        let p = self.next_record();
        self.resolve_record(p, interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn source(rate: RateSpec) -> TrafficSource {
        TrafficSource::new(&SourceConfig {
            service: ServiceKind::IpForward,
            trace: TracePreset::Auckland(1),
            rate,
        })
    }

    #[test]
    fn constant_rate_gap_mean() {
        let s = source(RateSpec::Constant(2.0)); // 2 Mpps → mean gap 0.5 µs
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| s.next_gap(1.0, &mut rng).as_micros_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean gap {mean}");
    }

    #[test]
    fn scale_stretches_gaps() {
        let s = source(RateSpec::Constant(2.0));
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| s.next_gap(50.0, &mut rng).as_micros_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 25.0).abs() < 1.0, "scaled mean gap {mean}");
    }

    #[test]
    fn headers_come_from_preset_namespace() {
        let mut s = source(RateSpec::Constant(1.0));
        let (f1, sz) = s.next_header();
        assert!(matches!(sz, 64 | 576 | 1500));
        let mut s2 = source(RateSpec::Constant(1.0));
        let (f2, _) = s2.next_header();
        assert_eq!(f1, f2, "same preset+seed → same header stream");
    }

    #[test]
    fn interned_headers_match_plain_headers() {
        // The interned path must emit exactly the same header stream as
        // the plain one, with slots that round-trip through the interner.
        let mut a = source(RateSpec::Constant(1.0));
        let mut b = source(RateSpec::Constant(1.0));
        let mut interner = FlowInterner::new();
        for _ in 0..5_000 {
            let (f1, sz1) = a.next_header();
            let (f2, slot, sz2) = b.next_header_interned(&mut interner);
            assert_eq!(f1, f2);
            assert_eq!(sz1, sz2);
            assert_eq!(interner.resolve(slot), Some(f2));
        }
        assert!(interner.len() > 1, "trace should contain several flows");
    }

    #[test]
    fn holt_winters_rate_refresh() {
        let hw = HoltWinters::new(1.0, 0.0, 0.5, 10.0, 0.0);
        let mut s = source(RateSpec::HoltWinters(hw));
        let mut rng = StdRng::seed_from_u64(3);
        s.refresh_rate(SimTime::from_secs_f64(2.5), &mut rng); // quarter period → S=1
        assert!((s.current_rate() - 1.5).abs() < 1e-9);
    }
}
