//! # npsim — the network-processor simulation model
//!
//! The Rust equivalent of the paper's SpecC model (§IV, Fig. 6): a
//! deterministic discrete-event simulation of the data-plane fast path of
//! a multicore communications processor.
//!
//! * [`PacketDesc`] — a packet descriptor as the frame manager would
//!   enqueue it: flow ID, service, size, arrival time, per-flow sequence.
//! * [`TrafficSource`] — per-service packet generation: headers drawn from
//!   an `nptrace` generator, arrival times from an `nptraffic` rate model
//!   (constant or Holt-Winters).
//! * [`Scheduler`] — the trait every scheduling policy implements; the
//!   engine gives it each packet plus a [`SystemView`] of queue state and
//!   it answers with a target core. Two trivial policies ship here
//!   ([`RoundRobin`], [`JoinShortestQueue`]); the paper's policies live in
//!   the `laps` crate.
//! * [`Engine`] — the event loop: bounded per-core input queues (32
//!   descriptors), processing delays per the Eq. 3 model with
//!   flow-migration and cold-I-cache penalties, drop accounting, and
//!   packet-reordering measurement at departure.
//! * [`SimReport`] — everything the paper's figures need: drops,
//!   out-of-order departures, flow migrations, cold-cache fraction,
//!   latency distribution, per-service breakdowns.
//!
//! Optional engine features (off by default, matching the paper's
//! model): an egress [`RestorationBuffer`] (§VI's order-restoration
//! alternative), a frame-manager control-plane classifier
//! (`EngineConfig::control_plane_fraction`, Fig. 1's slow path), and
//! per-core busy-time accounting for power models.
//!
//! The engine is exactly reproducible: same configuration + seed → the
//! same report, bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod exec;
pub mod fault;
mod mem;
pub mod order;
pub mod packet;
pub mod probe;
pub mod report;
pub mod restore;
pub mod sched;
pub mod source;

pub use engine::{
    ArrivalPlan, CycleReport, Engine, EngineConfig, EventBackend, ExecutionMode, ScheduledPacket,
    Stage, StageCycles,
};
pub use event::SimEvent;
pub use exec::{DetsimBackend, ExecBackend, ExecError, UnsupportedPlan};
pub use fault::{DropPolicy, FaultAction, FaultMark, FaultPlan, FaultProbe, FaultStats, Recovery};
pub use order::OrderTracker;
pub use packet::PacketDesc;
pub use probe::{
    EventLogProbe, MetricsProbe, Probe, ProbeHost, ProbeStack, ReportProbe, UtilizationProbe,
};
pub use report::{ServiceBreakdown, SimReport, SyncStats};
pub use restore::{RestorationBuffer, RestorationStats};
pub use sched::{
    JoinShortestQueue, QueueInfo, RepairOutcome, RoundRobin, SchedEvent, Scheduler, SyncPolicy,
    SystemView,
};
pub use source::{RateSpec, SourceConfig, TrafficSource};
