//! Execution backends: what actually *runs* a configured simulation.
//!
//! The staged pipeline (ingest → dispatch → service → record) describes
//! the data plane; an [`ExecBackend`] decides how it executes:
//!
//! * [`DetsimBackend`] — the deterministic single-threaded reference:
//!   the [`Engine`] run loop over the detsim event clock. Reports are
//!   byte-identical to constructing the engine directly (this type is a
//!   pass-through, pinned by the test below and the workspace golden
//!   fixtures).
//! * `npexec::ThreadedBackend` (the `npexec` crate) — real OS threads,
//!   one pinned worker per simulated core, fed over SPSC rings with the
//!   mark → redirect → first-packet-ack migration handshake. Reports
//!   are *statistically* equivalent to detsim (same offered stream via
//!   [`ArrivalPlan`](crate::engine::ArrivalPlan), migration/reorder
//!   counts validated by the `exec_validate` experiment), never
//!   byte-identical — wall-clock interleaving is not reproducible.
//!
//! The trait is object-safe and deliberately coarse — one call runs a
//! whole configuration — so backends can own their run loop entirely:
//! detsim keeps its event queue, npexec spawns its thread pool, and the
//! stages stay backend-neutral. `SimBuilder::backend(...)` (in `laps`)
//! routes builder runs through any boxed backend.

use crate::engine::{Engine, EngineConfig};
use crate::probe::ProbeStack;
use crate::report::SimReport;
use crate::sched::Scheduler;
use crate::source::SourceConfig;
use detsim::SimTime;
use std::fmt;

/// Why a backend cannot execute a configuration — the typed half of
/// [`ExecBackend::validate`]. Every variant names the first offending
/// plan entry so the caller can fix the plan, not grep a panic string.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The configuration's fault plan contains an action this backend
    /// cannot execute.
    UnsupportedPlan(UnsupportedPlan),
}

/// The specific fault-plan action combination a backend rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum UnsupportedPlan {
    /// A `Flood`/`FloodEnd` action: floods perturb the arrival stream,
    /// so a flooded configuration has no backend-neutral
    /// [`ArrivalPlan`](crate::engine::ArrivalPlan) to execute — only
    /// detsim (which owns ingest) can run it.
    Flood {
        /// When the flood is scheduled.
        at: SimTime,
        /// The flooded source index.
        source: usize,
    },
    /// A crash/heal/throttle/stall names a core the backend has no
    /// worker for.
    CoreOutOfRange {
        /// When the action is scheduled.
        at: SimTime,
        /// The out-of-range core.
        core: usize,
        /// Workers the backend would run.
        workers: usize,
    },
    /// Executing the plan in order would crash the last live worker —
    /// with no live ring to repair onto, the run cannot make progress.
    AllWorkersDown {
        /// When the fatal crash is scheduled.
        at: SimTime,
        /// Workers the backend would run.
        workers: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnsupportedPlan(u) => write!(f, "unsupported fault plan: {u}"),
        }
    }
}

impl fmt::Display for UnsupportedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedPlan::Flood { at, source } => write!(
                f,
                "flood of source {source} at {at:?} perturbs the arrival plan; \
                 run flooded configs on detsim"
            ),
            UnsupportedPlan::CoreOutOfRange { at, core, workers } => write!(
                f,
                "fault at {at:?} targets core {core} but the backend runs \
                 {workers} workers"
            ),
            UnsupportedPlan::AllWorkersDown { at, workers } => write!(
                f,
                "crash at {at:?} would take down the last of {workers} workers; \
                 no live ring remains to repair onto"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// A strategy for executing one configured simulation run.
///
/// Implementations consume the scheduler boxed (policies are stateful)
/// and hand back the probe stack so callers can read accumulated
/// observations — the same contract as [`Engine::run_full`], minus the
/// scheduler (backends that shard the policy across threads cannot
/// return a single instance).
pub trait ExecBackend {
    /// Stable backend name (reports and experiment tables key on it).
    fn name(&self) -> &'static str;

    /// Whether this backend can execute `cfg` at all. The default
    /// accepts everything (detsim executes every plan); backends with a
    /// narrower envelope override it and return the first offending
    /// entry as a typed [`ExecError`]. [`ExecBackend::run`] is
    /// permitted to panic on configurations `validate` rejects.
    fn validate(&self, _cfg: &EngineConfig, _sources: &[SourceConfig]) -> Result<(), ExecError> {
        Ok(())
    }

    /// Run `cfg` + `sources` under `scheduler`, publishing to `probes`,
    /// to completion.
    fn run(
        &mut self,
        cfg: &EngineConfig,
        sources: &[SourceConfig],
        scheduler: Box<dyn Scheduler>,
        probes: ProbeStack,
    ) -> (SimReport, ProbeStack);
}

/// The deterministic single-threaded reference backend: a pass-through
/// to the [`Engine`] run loop. Byte-identical to direct engine
/// construction — with an empty probe stack it takes the engine's
/// zero-probe fast path, exactly as `SimBuilder` always has.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetsimBackend;

impl ExecBackend for DetsimBackend {
    fn name(&self) -> &'static str {
        "detsim"
    }

    fn run(
        &mut self,
        cfg: &EngineConfig,
        sources: &[SourceConfig],
        scheduler: Box<dyn Scheduler>,
        probes: ProbeStack,
    ) -> (SimReport, ProbeStack) {
        if probes.is_empty() {
            let report = Engine::new(cfg.clone(), sources, scheduler).run();
            (report, ProbeStack::new())
        } else {
            let (report, _sched, probes) =
                Engine::with_probe_stack(cfg.clone(), sources, scheduler, probes).run_full();
            (report, probes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::MetricsProbe;
    use crate::sched::JoinShortestQueue;
    use crate::source::RateSpec;
    use detsim::SimTime;
    use nptrace::TracePreset;
    use nptraffic::ServiceKind;

    fn cfg() -> EngineConfig {
        EngineConfig {
            n_cores: 2,
            duration: SimTime::from_millis(10),
            scale: 1.0,
            seed: 9,
            ..EngineConfig::default()
        }
    }

    fn sources() -> Vec<SourceConfig> {
        vec![SourceConfig {
            service: ServiceKind::IpForward,
            trace: TracePreset::Auckland(1),
            rate: RateSpec::Constant(2.0),
        }]
    }

    #[test]
    fn detsim_backend_is_a_pass_through() {
        let direct = Engine::new(cfg(), &sources(), JoinShortestQueue::new()).run();
        let (via_backend, _probes) = DetsimBackend.run(
            &cfg(),
            &sources(),
            Box::new(JoinShortestQueue::new()),
            ProbeStack::new(),
        );
        assert_eq!(
            serde_json::to_string(&direct).expect("serializes"),
            serde_json::to_string(&via_backend).expect("serializes"),
            "backend indirection must be byte-invisible"
        );
    }

    #[test]
    fn detsim_backend_returns_probes() {
        let probes: ProbeStack = vec![Box::new(MetricsProbe::new())];
        let (report, probes) = DetsimBackend.run(
            &cfg(),
            &sources(),
            Box::new(JoinShortestQueue::new()),
            probes,
        );
        let metrics = probes
            .first()
            .and_then(|p| p.as_any().downcast_ref::<MetricsProbe>())
            .expect("metrics probe comes back");
        let arrivals = metrics
            .counters()
            .iter()
            .find(|(n, _)| *n == "arrivals")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(arrivals, report.offered);
    }
}
