//! The simulation engine (Fig. 6): packet generator → scheduler → per-core
//! queues → processing → departure.
//!
//! Semantics, matching §IV:
//!
//! * Each core has a bounded input queue (32 descriptors); a packet
//!   dispatched to a full queue is **dropped**.
//! * Processing delay follows Eq. 3: `T_proc` (per service and size) plus
//!   the 0.8 µs flow-migration penalty when the flow's previous packet
//!   used a different core, plus the 10 µs cold-cache penalty when the
//!   core's previous packet belonged to a different service.
//! * Reordering is measured at departure against per-flow arrival
//!   sequence numbers.
//! * Arrivals follow per-source Poisson processes whose rate is refreshed
//!   from the source's rate law every `rate_update_interval`.
//!
//! After the horizon, arrivals stop and the queues drain, so every offered
//! packet is finally either dropped or processed — an invariant the tests
//! assert.

use crate::order::OrderTracker;
use crate::packet::PacketDesc;
use crate::report::SimReport;
use crate::restore::RestorationBuffer;
use crate::sched::{QueueInfo, Scheduler, SystemView};
use crate::source::{RateSpec, SourceConfig, TrafficSource};
use detsim::{BoundedQueue, EventQueue, PushOutcome, SeedSequence, SimTime, TimerWheel};
use nphash::{FlowInterner, FlowSlot};
use nptraffic::{DelayModel, ServiceKind};
use rand::rngs::StdRng;
use rand::Rng;

/// Which event-queue implementation drives the run loop.
///
/// Both structures implement the same deterministic contract — earliest
/// time first, FIFO among equal `(time, seq)` — so the two backends
/// produce **byte-identical reports** for the same configuration and
/// seed (pinned by the workspace `backend_equivalence` property test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventBackend {
    /// `detsim::EventQueue` — the O(log n) binary heap. The default:
    /// the engine's pending-event set is tiny (≈ one finish event per
    /// busy core plus one arrival per source), and at that size a
    /// contiguous heap measurably outruns the wheel's slot machinery
    /// (see DESIGN.md "Hot path & perf baseline" for the numbers).
    #[default]
    Heap,
    /// `detsim::TimerWheel` — O(1)-amortized hierarchical timing wheel.
    /// Wins when the pending set is large (thousands of timers); kept a
    /// config knob away, with a byte-identical-report equivalence test,
    /// so event-heavy scenarios can flip it with zero semantic risk.
    Wheel,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of data-plane cores (paper: 16).
    pub n_cores: usize,
    /// Per-core input-queue capacity in descriptors (paper: 32).
    pub queue_capacity: usize,
    /// Simulated horizon; arrivals stop here and queues drain.
    pub duration: SimTime,
    /// Rate/time scale factor `F` (see DESIGN.md). 1.0 = paper-exact.
    pub scale: f64,
    /// Root seed; all internal streams derive from it.
    pub seed: u64,
    /// How often each source re-samples its rate law.
    pub rate_update_interval: SimTime,
    /// Queue depth at which a core counts as "congested" for the
    /// surplus-core eligibility signal (`QueueInfo::last_congested`).
    pub congestion_watermark: usize,
    /// Divide Holt-Winters seasonal periods by this factor so short runs
    /// still see seasonal variation (1.0 = periods as published).
    pub period_compression: f64,
    /// Penalty model; its `scale` field is overridden by `scale` above.
    pub delay: DelayModel,
    /// Enable an egress order-restoration buffer with this timeout (the
    /// §VI alternative to order preservation). `None` = packets depart
    /// the instant processing finishes (the paper's model).
    pub restoration: Option<SimTime>,
    /// Fraction of arriving packets the frame-manager classifier marks
    /// as *control plane* (§II / Fig. 1): they take the slow path through
    /// the general-purpose cores and never reach the data-plane
    /// scheduler. The paper studies data-plane scheduling, so 0 by
    /// default.
    pub control_plane_fraction: f64,
    /// Event-queue implementation behind the run loop (default: the
    /// binary heap; the timer wheel is retained for event-heavy
    /// scenarios and cross-checking).
    pub event_backend: EventBackend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_cores: 16,
            queue_capacity: 32,
            duration: SimTime::from_secs(1),
            scale: 50.0,
            seed: 1,
            rate_update_interval: SimTime::from_millis(100),
            congestion_watermark: 2,
            period_compression: 1.0,
            delay: DelayModel::default(),
            restoration: None,
            control_plane_fraction: 0.0,
            event_backend: EventBackend::default(),
        }
    }
}

#[derive(Debug)]
struct Core {
    queue: BoundedQueue<PacketDesc>,
    current: Option<PacketDesc>,
    last_service: Option<ServiceKind>,
    idle_since: Option<SimTime>,
    last_congested: SimTime,
    busy_ns: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival(usize),
    Finish(usize),
    RateUpdate,
}

/// Sentinel in [`FlowTable::last_core`]: the flow has not been enqueued
/// anywhere yet.
const NO_CORE: u32 = u32::MAX;

/// Struct-of-arrays per-flow state, indexed by [`FlowSlot`] — the
/// hash-free replacement for the former `DetHashMap<FlowId, _>` pair.
/// One predictable array access per packet per field.
#[derive(Debug, Default)]
struct FlowTable {
    /// Next arrival sequence number per flow.
    seq: Vec<u64>,
    /// Core the flow's last packet was enqueued to (`NO_CORE` = none).
    last_core: Vec<u32>,
}

impl FlowTable {
    /// Ensure slots `0..n` exist (new slots: seq 0, no last core).
    fn grow_to(&mut self, n: usize) {
        if self.seq.len() < n {
            self.seq.resize(n, 0);
            self.last_core.resize(n, NO_CORE);
        }
    }

    /// Fetch-and-increment the flow's arrival sequence counter.
    fn next_seq(&mut self, slot: FlowSlot) -> u64 {
        match self.seq.get_mut(slot.index()) {
            Some(s) => {
                let v = *s;
                *s += 1;
                v
            }
            None => {
                // Unreachable: the table is grown to the interner's length
                // before any lookup.
                debug_assert!(false, "flow table not grown to slot {slot:?}");
                0
            }
        }
    }

    /// The core the flow's previous packet was enqueued to, if any.
    fn last_core(&self, slot: FlowSlot) -> Option<usize> {
        self.last_core
            .get(slot.index())
            .and_then(|&c| (c != NO_CORE).then_some(c as usize))
    }

    /// Record the core the flow's packet was just enqueued to.
    fn set_last_core(&mut self, slot: FlowSlot, core: usize) {
        if let Some(c) = self.last_core.get_mut(slot.index()) {
            *c = core as u32;
        } else {
            debug_assert!(false, "flow table not grown to slot {slot:?}");
        }
    }
}

/// The engine's event queue, behind the [`EventBackend`] knob. Both
/// variants share the `(time, seq)` total order, so swapping them cannot
/// change a run's result — only its wall-clock speed.
#[derive(Debug)]
enum EventSchedule {
    Heap(EventQueue<Ev>),
    Wheel(Box<TimerWheel<Ev>>),
}

impl EventSchedule {
    /// Pick the backend; the wheel's tick granularity adapts to the time
    /// scale so that a slot spans roughly one packet service time
    /// (deterministic: derived from the configuration only).
    fn new(backend: EventBackend, scale: f64) -> Self {
        match backend {
            EventBackend::Heap => EventSchedule::Heap(EventQueue::with_capacity(1024)),
            EventBackend::Wheel => {
                // Power of two so the wheel's time→tick conversion is a
                // shift, not a division; roughly one tick per paper-scale
                // inter-arrival at the bench rates.
                let tick_ns = ((scale * 50.0) as u64).clamp(32, 2048).next_power_of_two();
                EventSchedule::Wheel(Box::new(TimerWheel::new(tick_ns)))
            }
        }
    }

    #[inline]
    fn push(&mut self, at: SimTime, ev: Ev) {
        match self {
            EventSchedule::Heap(q) => {
                q.push(at, ev);
            }
            EventSchedule::Wheel(w) => w.push(at, ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            EventSchedule::Heap(q) => q.pop(),
            EventSchedule::Wheel(w) => w.pop(),
        }
    }
}

/// A traffic source paired with its private arrival-process RNG stream
/// (keeping them in one slot makes per-source access a single bounds
/// check and rules out the two parallel arrays drifting apart).
#[derive(Debug)]
struct SourceSlot {
    source: TrafficSource,
    rng: StdRng,
}

/// The simulation engine, generic over the scheduling policy.
pub struct Engine<S: Scheduler> {
    cfg: EngineConfig,
    delay: DelayModel,
    scheduler: S,
    sources: Vec<SourceSlot>,
    cores: Vec<Core>,
    events: EventSchedule,
    /// Flow arena: FlowId → dense slot, assigned at first emission.
    interner: FlowInterner,
    /// Per-flow state (arrival seq, last core), slot-indexed.
    flows: FlowTable,
    order: OrderTracker,
    classifier_rng: StdRng,
    restoration: Option<RestorationBuffer>,
    report: SimReport,
    next_packet_id: u64,
    /// Per-core scheduler view, maintained **incrementally**: only the
    /// core an event touched is resynced (one entry per event instead of
    /// an `n_cores` rebuild per arrival), and the buffer itself is
    /// steady-state allocation-free.
    infos: Vec<QueueInfo>,
}

impl<S: Scheduler> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("scheduler", &self.scheduler.name())
            .field("n_cores", &self.cores.len())
            .field("n_sources", &self.sources.len())
            .field("next_packet_id", &self.next_packet_id)
            .finish_non_exhaustive()
    }
}

impl<S: Scheduler> Engine<S> {
    /// Build an engine over `sources`, scheduled by `scheduler`.
    ///
    /// # Panics
    /// Panics on a zero-core configuration or an empty source list.
    pub fn new(cfg: EngineConfig, sources: &[SourceConfig], scheduler: S) -> Self {
        assert!(cfg.n_cores > 0, "need at least one core");
        assert!(!sources.is_empty(), "need at least one traffic source");
        assert!(cfg.scale > 0.0, "scale must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.control_plane_fraction),
            "control-plane fraction must be in [0, 1)"
        );
        let seq = SeedSequence::new(cfg.seed);
        let mut delay = cfg.delay;
        delay.scale = cfg.scale;
        let sources_built: Vec<SourceSlot> = sources
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                let mut sc = sc.clone();
                if let RateSpec::HoltWinters(hw) = sc.rate {
                    sc.rate =
                        RateSpec::HoltWinters(hw.with_period_compressed(cfg.period_compression));
                }
                SourceSlot {
                    source: TrafficSource::new(&sc),
                    rng: seq.indexed_rng("source", i),
                }
            })
            .collect();
        let cores: Vec<Core> = (0..cfg.n_cores)
            .map(|_| Core {
                queue: BoundedQueue::new(cfg.queue_capacity),
                current: None,
                last_service: None,
                idle_since: Some(SimTime::ZERO),
                last_congested: SimTime::ZERO,
                busy_ns: 0,
            })
            .collect();
        let report = SimReport::new(scheduler.name(), cfg.duration, cfg.scale);
        let restoration = cfg.restoration.map(RestorationBuffer::new);
        let infos = cores
            .iter()
            .map(|c: &Core| QueueInfo {
                len: c.queue.len(),
                capacity: c.queue.capacity(),
                busy: c.current.is_some(),
                idle_since: c.idle_since,
                last_congested: c.last_congested,
            })
            .collect();
        Engine {
            delay,
            scheduler,
            sources: sources_built,
            cores,
            events: EventSchedule::new(cfg.event_backend, cfg.scale),
            interner: FlowInterner::new(),
            flows: FlowTable::default(),
            order: OrderTracker::new(),
            classifier_rng: seq.rng("fm-classifier"),
            restoration,
            report,
            next_packet_id: 0,
            infos,
            cfg,
        }
    }

    /// Record a packet leaving the system (after restoration, if any).
    fn emit(&mut self, pkt: PacketDesc, now: SimTime) {
        self.report.processed += 1;
        self.report.service_mut(pkt.service).processed += 1;
        if self.order.record_departure(pkt.slot, pkt.flow_seq) {
            self.report.out_of_order += 1;
            self.report.service_mut(pkt.service).out_of_order += 1;
        }
        self.report.latency.record((now - pkt.arrival).as_nanos());
    }

    /// Resync core `i`'s scheduler-view entry after mutating it. Every
    /// event touches exactly one core, so this keeps the view coherent at
    /// one entry write per event instead of an `n_cores` rebuild.
    #[inline]
    fn sync_info(&mut self, i: usize) {
        if let (Some(info), Some(c)) = (self.infos.get_mut(i), self.cores.get(i)) {
            *info = QueueInfo {
                len: c.queue.len(),
                capacity: c.queue.capacity(),
                busy: c.current.is_some(),
                idle_since: c.idle_since,
                last_congested: c.last_congested,
            };
        }
    }

    fn start_processing(&mut self, core: usize, now: SimTime) {
        // Core IDs originate from our own event queue / scheduler-checked
        // dispatch; an out-of-range ID is a bug upstream, not a reason to
        // panic mid-run.
        let Some(slot) = self.cores.get_mut(core) else {
            debug_assert!(false, "start_processing on unknown core {core}");
            return;
        };
        if slot.current.is_some() {
            return;
        }
        let Some(pkt) = slot.queue.pop() else {
            if slot.idle_since.is_none() {
                slot.idle_since = Some(now);
            }
            return;
        };
        let cold = slot.last_service != Some(pkt.service);
        if cold {
            self.report.cold_starts += 1;
        }
        if pkt.migrated {
            self.report.migrated_packets += 1;
        }
        let d_us = self
            .delay
            .processing_delay_us(pkt.service, pkt.size, pkt.migrated, cold);
        let d = SimTime::from_micros_f64(d_us);
        slot.busy_ns += d.as_nanos();
        slot.last_service = Some(pkt.service);
        slot.current = Some(pkt);
        slot.idle_since = None;
        self.events.push(now + d, Ev::Finish(core));
    }

    /// Schedule the next arrival from `src` if it lands in the horizon.
    fn schedule_next_arrival(&mut self, src: usize, now: SimTime) {
        let scale = self.cfg.scale;
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "arrival from unknown source {src}");
            return;
        };
        let gap = slot.source.next_gap(scale, &mut slot.rng);
        let next = now + gap;
        if next <= self.cfg.duration {
            self.events.push(next, Ev::Arrival(src));
        }
    }

    fn on_arrival(&mut self, src: usize, now: SimTime) {
        // Draw the header and build the descriptor.
        let Some(slot) = self.sources.get_mut(src) else {
            debug_assert!(false, "arrival from unknown source {src}");
            return;
        };
        let (flow, flow_slot, size) = slot.source.next_header_interned(&mut self.interner);
        let service = slot.source.service;
        // Frame-manager classification (Fig. 1): control-plane packets
        // take the slow path and never enter the data-plane scheduler.
        if self.cfg.control_plane_fraction > 0.0
            && self.classifier_rng.gen::<f64>() < self.cfg.control_plane_fraction
        {
            self.report.slow_path += 1;
            self.schedule_next_arrival(src, now);
            return;
        }
        self.flows.grow_to(self.interner.len());
        let flow_seq = self.flows.next_seq(flow_slot);
        let mut pkt = PacketDesc {
            id: self.next_packet_id,
            flow,
            slot: flow_slot,
            service,
            size,
            arrival: now,
            flow_seq,
            migrated: false,
        };
        self.next_packet_id += 1;
        self.report.offered += 1;
        self.report.service_mut(service).offered += 1;

        // Ask the policy for a target core. The view is maintained
        // incrementally (see `sync_info`); it is briefly moved out so the
        // scheduler can borrow it alongside `&mut self.scheduler`.
        let infos = std::mem::take(&mut self.infos);
        let view = SystemView {
            now,
            queues: &infos,
        };
        let target = self.scheduler.schedule(&pkt, &view);
        self.infos = infos;
        assert!(
            target < self.cfg.n_cores,
            "scheduler returned core {target}"
        );

        let migrated = matches!(self.flows.last_core(flow_slot), Some(c) if c != target);
        pkt.migrated = migrated;
        // `target` < n_cores was just asserted, so the lookup is total.
        let outcome = self
            .cores
            .get_mut(target)
            .map(|c| c.queue.push(pkt))
            .unwrap_or(PushOutcome::Dropped);
        match outcome {
            PushOutcome::Dropped => {
                if let Some(c) = self.cores.get_mut(target) {
                    c.last_congested = now;
                }
                self.report.dropped += 1;
                self.report.service_mut(service).dropped += 1;
                self.scheduler.on_drop(&pkt, target);
                // The frame manager knows this sequence number will never
                // depart; tell the restoration buffer not to wait for it.
                if let Some(buf) = self.restoration.as_mut() {
                    for released in buf.note_gap(pkt.slot, pkt.flow_seq, now) {
                        self.emit(released, now);
                    }
                }
            }
            PushOutcome::Enqueued(len) => {
                if len >= self.cfg.congestion_watermark {
                    if let Some(c) = self.cores.get_mut(target) {
                        c.last_congested = now;
                    }
                }
                if migrated {
                    self.report.migration_events += 1;
                }
                self.flows.set_last_core(flow_slot, target);
                self.start_processing(target, now);
            }
        }
        // The only core this arrival touched; bring its view entry up to
        // date for the next schedule() call.
        self.sync_info(target);

        // Schedule the next arrival from this source, if still within the
        // horizon.
        self.schedule_next_arrival(src, now);
    }

    fn on_finish(&mut self, core: usize, now: SimTime) {
        // A finish event always carries the packet placed by
        // start_processing; a missing one means the event queue and core
        // state disagree — flag it in debug, skip it in release.
        let Some(pkt) = self.cores.get_mut(core).and_then(|c| c.current.take()) else {
            debug_assert!(
                false,
                "finish event without packet in service on core {core}"
            );
            return;
        };
        match self.restoration.as_mut() {
            None => self.emit(pkt, now),
            Some(buf) => {
                let mut released = buf.on_departure(pkt, now);
                released.extend(buf.flush_timeouts(now));
                for p in released {
                    self.emit(p, now);
                }
            }
        }
        self.start_processing(core, now);
        self.sync_info(core);
    }

    fn on_rate_update(&mut self, now: SimTime) {
        for slot in &mut self.sources {
            slot.source.refresh_rate(now, &mut slot.rng);
        }
        let next = now + self.cfg.rate_update_interval;
        if next <= self.cfg.duration {
            self.events.push(next, Ev::RateUpdate);
        }
    }

    /// Runtime invariant checks, compiled in with `--features invariants`
    /// (debug builds of the `invariants` feature; zero cost otherwise).
    ///
    /// Checked at every event dispatch:
    /// 1. **Packet conservation** — every offered packet is either
    ///    processed, dropped, queued, in service, or waiting in the
    ///    restoration buffer: `offered == processed + dropped + in_flight`.
    /// 2. **Monotone virtual time** — the event clock never runs
    ///    backwards.
    #[cfg(feature = "invariants")]
    fn check_invariants(&self, now: SimTime, previous: SimTime) {
        assert!(
            now >= previous,
            "virtual time ran backwards: {previous:?} -> {now:?}"
        );
        let queued: u64 = self.cores.iter().map(|c| c.queue.len() as u64).sum();
        let in_service: u64 = self.cores.iter().filter(|c| c.current.is_some()).count() as u64;
        let buffered = self
            .restoration
            .as_ref()
            .map_or(0, |b| b.occupancy() as u64);
        let accounted =
            self.report.processed + self.report.dropped + queued + in_service + buffered;
        assert_eq!(
            self.report.offered, accounted,
            "packet conservation violated at t={now:?}: offered {} != processed {} + dropped {} \
             + queued {queued} + in-service {in_service} + restoration-buffered {buffered}",
            self.report.offered, self.report.processed, self.report.dropped
        );
        // 3. **View coherence** — the incrementally maintained scheduler
        //    view matches a from-scratch rebuild of the core state.
        for (i, (info, c)) in self.infos.iter().zip(self.cores.iter()).enumerate() {
            assert!(
                info.len == c.queue.len()
                    && info.capacity == c.queue.capacity()
                    && info.busy == c.current.is_some()
                    && info.idle_since == c.idle_since
                    && info.last_congested == c.last_congested,
                "scheduler view out of sync with core {i} at t={now:?}"
            );
        }
    }

    /// Run to completion (horizon + drain) and return the report.
    pub fn run(self) -> SimReport {
        self.run_returning_scheduler().0
    }

    /// Like [`Engine::run`], but also hands back the scheduler so callers
    /// can read policy-internal statistics (e.g. LAPS park/wake counts).
    pub fn run_returning_scheduler(mut self) -> (SimReport, S) {
        // Prime arrivals and the rate-update ticker.
        let scale = self.cfg.scale;
        let mut primed = Vec::with_capacity(self.sources.len());
        for (i, slot) in self.sources.iter_mut().enumerate() {
            let gap = slot.source.next_gap(scale, &mut slot.rng);
            if gap <= self.cfg.duration {
                primed.push((gap, Ev::Arrival(i)));
            }
        }
        for (at, ev) in primed {
            self.events.push(at, ev);
        }
        if self.cfg.rate_update_interval <= self.cfg.duration {
            self.events
                .push(self.cfg.rate_update_interval, Ev::RateUpdate);
        }

        let mut last_t = SimTime::ZERO;
        while let Some((t, ev)) = self.events.pop() {
            #[cfg(feature = "invariants")]
            self.check_invariants(t, last_t);
            last_t = t;
            self.report.events += 1;
            match ev {
                Ev::Arrival(src) => self.on_arrival(src, t),
                Ev::Finish(core) => self.on_finish(core, t),
                Ev::RateUpdate => self.on_rate_update(t),
            }
            #[cfg(feature = "invariants")]
            self.check_invariants(t, last_t);
        }
        self.report.end_time = last_t.max(self.cfg.duration);

        // Anything still waiting in the restoration buffer departs at the
        // final instant.
        if let Some(mut buf) = self.restoration.take() {
            let now = self.cfg.duration;
            for p in buf.drain_all(now) {
                self.emit(p, now);
            }
            self.report.restoration = Some(buf.into_stats());
        }
        self.report.out_of_order = self.order.out_of_order();
        self.report.core_reallocations = self.scheduler.core_reallocations();
        self.report.core_busy_ns = self.cores.iter().map(|c| c.busy_ns).collect();
        (self.report, self.scheduler)
    }

    /// Borrow the scheduler (e.g. to inspect detector state post-run in
    /// tests that drive the engine manually).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{JoinShortestQueue, RoundRobin};
    use nptrace::TracePreset;

    fn one_source(rate_mpps: f64) -> Vec<SourceConfig> {
        vec![SourceConfig {
            service: ServiceKind::IpForward,
            trace: TracePreset::Auckland(1),
            rate: RateSpec::Constant(rate_mpps),
        }]
    }

    fn quick_cfg(n_cores: usize, duration_ms: u64) -> EngineConfig {
        EngineConfig {
            n_cores,
            duration: SimTime::from_millis(duration_ms),
            scale: 1.0,
            seed: 42,
            ..EngineConfig::default()
        }
    }

    /// A test policy pinning each flow to `crc16 % n` — ideal flow
    /// locality, no migration ever.
    struct PinByHash;
    impl Scheduler for PinByHash {
        fn name(&self) -> &str {
            "pin-by-hash"
        }
        fn schedule(&mut self, pkt: &PacketDesc, view: &SystemView<'_>) -> usize {
            (nphash::crc16_ccitt(&pkt.flow.to_bytes()) as usize) % view.n_cores()
        }
    }

    /// A pathological policy that bounces every packet of every flow
    /// between cores 0 and 1.
    struct PingPong(usize);
    impl Scheduler for PingPong {
        fn name(&self) -> &str {
            "ping-pong"
        }
        fn schedule(&mut self, _p: &PacketDesc, _v: &SystemView<'_>) -> usize {
            self.0 ^= 1;
            self.0
        }
    }

    #[test]
    fn conservation_after_drain() {
        // Overloaded single core: 1 Mpps offered into 2 Mpps... IP fwd
        // takes 0.5µs ⇒ capacity exactly 2 Mpps; offer 4 Mpps to force
        // drops.
        let report =
            Engine::new(quick_cfg(1, 20), &one_source(4.0), JoinShortestQueue::new()).run();
        assert!(report.offered > 0);
        assert!(report.dropped > 0, "overload must drop");
        assert_eq!(
            report.offered,
            report.accounted(),
            "drain accounts for every packet"
        );
    }

    #[test]
    fn underload_single_core_no_drops() {
        let report =
            Engine::new(quick_cfg(1, 20), &one_source(1.0), JoinShortestQueue::new()).run();
        assert_eq!(report.dropped, 0, "0.5 load should not drop");
        assert_eq!(report.offered, report.processed);
    }

    #[test]
    fn flow_pinning_preserves_order() {
        let report = Engine::new(quick_cfg(4, 50), &one_source(6.0), PinByHash).run();
        assert!(report.processed > 1_000);
        assert_eq!(report.out_of_order, 0, "pinned flows can never reorder");
        assert_eq!(report.migration_events, 0);
        assert_eq!(report.migrated_packets, 0);
    }

    #[test]
    fn ping_pong_migrates_and_reorders() {
        let report = Engine::new(quick_cfg(2, 50), &one_source(3.0), PingPong(0)).run();
        assert!(report.migration_events > 0);
        assert!(report.migrated_packets > 0);
        assert!(
            report.out_of_order > 0,
            "alternating cores must reorder some flows (ooo={})",
            report.out_of_order
        );
    }

    #[test]
    fn cold_cache_counted_on_service_switches() {
        // Two services sharing one core via JSQ: every alternation pays.
        let sources = vec![
            SourceConfig {
                service: ServiceKind::IpForward,
                trace: TracePreset::Auckland(1),
                rate: RateSpec::Constant(0.02),
            },
            SourceConfig {
                service: ServiceKind::MalwareScan,
                trace: TracePreset::Auckland(2),
                rate: RateSpec::Constant(0.02),
            },
        ];
        let report = Engine::new(quick_cfg(1, 100), &sources, JoinShortestQueue::new()).run();
        assert!(report.processed > 100);
        assert!(
            report.cold_fraction() > 0.2,
            "alternating services on one core should run cold often (got {})",
            report.cold_fraction()
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let r = Engine::new(quick_cfg(4, 30), &one_source(5.0), JoinShortestQueue::new()).run();
            (
                r.offered,
                r.dropped,
                r.processed,
                r.out_of_order,
                r.migration_events,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeds_change_the_run() {
        let mut cfg = quick_cfg(4, 30);
        let a = Engine::new(cfg.clone(), &one_source(5.0), JoinShortestQueue::new()).run();
        cfg.seed = 43;
        let b = Engine::new(cfg, &one_source(5.0), JoinShortestQueue::new()).run();
        assert_ne!(a.offered, b.offered);
    }

    #[test]
    fn round_robin_on_idle_cores_keeps_order_by_luck_of_uniform_service() {
        // RR over 2 cores at trivial load: each packet finishes before the
        // next arrives, so even RR cannot reorder.
        let report = Engine::new(quick_cfg(2, 20), &one_source(0.01), RoundRobin::new()).run();
        assert_eq!(report.out_of_order, 0);
        assert!(report.migration_events > 0, "RR still migrates flows");
    }

    #[test]
    fn offered_scales_with_rate_and_duration() {
        let r1 = Engine::new(quick_cfg(4, 20), &one_source(1.0), JoinShortestQueue::new()).run();
        let r2 = Engine::new(quick_cfg(4, 40), &one_source(1.0), JoinShortestQueue::new()).run();
        // 1 Mpps for 20 ms ≈ 20k packets.
        assert!(
            (r1.offered as f64 - 20_000.0).abs() < 2_000.0,
            "offered {}",
            r1.offered
        );
        let ratio = r2.offered as f64 / r1.offered as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn scale_preserves_offered_load_shape() {
        // Same experiment at scale 1 and scale 10: offered count drops by
        // 10x but drop *fraction* stays in the same band.
        let mk = |scale: f64| EngineConfig {
            n_cores: 2,
            duration: SimTime::from_millis(200),
            scale,
            seed: 7,
            ..EngineConfig::default()
        };
        let a = Engine::new(mk(1.0), &one_source(6.0), JoinShortestQueue::new()).run();
        let b = Engine::new(mk(10.0), &one_source(6.0), JoinShortestQueue::new()).run();
        let cnt_ratio = a.offered as f64 / b.offered as f64;
        assert!((cnt_ratio - 10.0).abs() < 2.0, "count ratio {cnt_ratio}");
        assert!(
            (a.drop_fraction() - b.drop_fraction()).abs() < 0.1,
            "drop fractions diverged: {} vs {}",
            a.drop_fraction(),
            b.drop_fraction()
        );
    }

    #[test]
    fn restoration_eliminates_reordering() {
        // The ping-pong policy reorders heavily; with an egress
        // restoration buffer the stream leaves in order, at the cost of
        // buffer occupancy and wait time.
        let mut cfg = quick_cfg(2, 10);
        cfg.restoration = Some(SimTime::from_millis(5));
        let with = Engine::new(cfg, &one_source(3.0), PingPong(0)).run();
        let without = Engine::new(quick_cfg(2, 10), &one_source(3.0), PingPong(0)).run();
        assert!(without.out_of_order > 0);
        assert_eq!(with.out_of_order, 0, "restoration must re-sequence");
        let stats = with.restoration.expect("stats recorded");
        assert!(stats.buffered > 0, "some packets must have waited");
        assert!(stats.peak_occupancy > 0);
        assert_eq!(
            with.offered,
            with.dropped + with.processed,
            "conservation holds"
        );
    }

    #[test]
    fn restoration_with_drops_does_not_deadlock() {
        // Overload a single core so drops punch holes in the sequence
        // space; the gap notifications keep the buffer draining.
        let mut cfg = quick_cfg(2, 8);
        cfg.restoration = Some(SimTime::from_millis(2));
        let r = Engine::new(cfg, &one_source(6.0), PingPong(0)).run();
        assert!(r.dropped > 0);
        assert_eq!(r.offered, r.dropped + r.processed);
        assert!(r.restoration.is_some());
    }

    #[test]
    fn control_plane_classifier_diverts_expected_fraction() {
        let mut cfg = quick_cfg(2, 40);
        cfg.control_plane_fraction = 0.1;
        let r = Engine::new(cfg, &one_source(1.0), JoinShortestQueue::new()).run();
        let total = r.offered + r.slow_path;
        let frac = r.slow_path as f64 / total as f64;
        assert!((frac - 0.1).abs() < 0.02, "slow-path fraction {frac}");
        // Data-plane accounting is unaffected.
        assert_eq!(r.offered, r.dropped + r.processed);
        // Default config diverts nothing.
        let r0 = Engine::new(quick_cfg(2, 40), &one_source(1.0), JoinShortestQueue::new()).run();
        assert_eq!(r0.slow_path, 0);
    }

    #[test]
    fn busy_time_tracks_load() {
        // Flow pinning: no migration penalties, so busy time is exactly
        // offered work: 2 Mpps x 0.5 µs = 1 core-equivalent over 4 cores.
        let r = Engine::new(quick_cfg(4, 20), &one_source(2.0), PinByHash).run();
        assert_eq!(r.core_busy_ns.len(), 4);
        let u = r.mean_utilization();
        assert!((u - 0.25).abs() < 0.05, "mean utilization {u}");
        assert_eq!(r.active_cores(0.02), 4, "hash spreads flows over all cores");
        assert_eq!(r.active_cores(2.0), 0);
    }

    #[test]
    fn per_service_breakdown_sums_to_totals() {
        let sources = vec![
            SourceConfig {
                service: ServiceKind::IpForward,
                trace: TracePreset::Auckland(1),
                rate: RateSpec::Constant(2.0),
            },
            SourceConfig {
                service: ServiceKind::VpnOut,
                trace: TracePreset::Auckland(2),
                rate: RateSpec::Constant(0.5),
            },
        ];
        let r = Engine::new(quick_cfg(4, 30), &sources, JoinShortestQueue::new()).run();
        let off: u64 = r.per_service.iter().map(|s| s.offered).sum();
        let drop: u64 = r.per_service.iter().map(|s| s.dropped).sum();
        let proc: u64 = r.per_service.iter().map(|s| s.processed).sum();
        assert_eq!(off, r.offered);
        assert_eq!(drop, r.dropped);
        assert_eq!(proc, r.processed);
    }
}
