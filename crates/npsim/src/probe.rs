//! The observability bus: [`Probe`]s consume the [`SimEvent`] stream.
//!
//! A probe is a passive observer attached to the engine at build time.
//! The record stage hands it every published event (`on_event`) and one
//! final callback at the end of the run (`on_finish`). Probes never feed
//! back into the simulation — attaching any combination of probes must
//! not change a single bit of the [`SimReport`](crate::SimReport).
//!
//! # Determinism contract
//!
//! Probes run inside the deterministic event loop, so `on_event` must
//! itself be deterministic and cheap:
//!
//! * **No fresh allocation** per event. Appending to a pre-owned,
//!   amortized-growth buffer (`Vec::push` / `resize`) is fine;
//!   constructing containers, strings, or boxes per event is not.
//! * **No nondeterministic collections** (`HashMap`/`HashSet` with
//!   random state) — iteration order would leak into output.
//! * **No wall-clock or OS entropy.** Virtual time arrives as an
//!   argument.
//!
//! The `npcheck` lint rule `probe-hot-path` enforces the allocation and
//! collection clauses mechanically over every `on_event` body in the
//! simulation crates.
//!
//! # Zero-probe fast path
//!
//! The engine is generic over a [`ProbeHost`]. The default host `()` has
//! `ACTIVE == false` and empty inlined methods, so an engine built
//! without probes compiles to exactly the pre-bus hot path — event
//! publishing folds to nothing. A `Vec<Box<dyn Probe>>` host dispatches
//! dynamically to every attached probe.

use crate::event::SimEvent;
use crate::report::SimReport;
use detsim::{Counter, Histogram, SimTime};
use std::any::Any;
use std::fmt::Write as _;

/// A passive observer of the simulation-event stream.
pub trait Probe {
    /// Short identifier used in logs and output file names.
    fn name(&self) -> &'static str;

    /// Observe one event at virtual time `now`. Must follow the module's
    /// determinism contract (no per-event allocation, no nondeterministic
    /// collections, no wall clock).
    fn on_event(&mut self, now: SimTime, ev: &SimEvent);

    /// Called once after the run loop drains, with the run's end time.
    fn on_finish(&mut self, _end: SimTime) {}

    /// Downcasting hook so callers can recover the concrete probe (and
    /// its accumulated data) from a `Box<dyn Probe>` after the run.
    fn as_any(&self) -> &dyn Any;
}

/// The engine-side probe attachment point.
///
/// Implemented by `()` (no probes: `ACTIVE == false`, everything inlines
/// to nothing) and by [`ProbeStack`] (dynamic dispatch to each attached
/// probe). Engine code guards every publish with `P::ACTIVE`, a
/// compile-time constant, so the zero-probe engine carries no bus cost.
pub trait ProbeHost {
    /// Whether this host observes events at all. `false` lets the
    /// compiler erase event construction and delivery entirely.
    const ACTIVE: bool;

    /// Deliver one event to every probe.
    fn deliver(&mut self, now: SimTime, ev: &SimEvent);

    /// Signal end of run to every probe.
    fn finish(&mut self, end: SimTime);
}

impl ProbeHost for () {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn deliver(&mut self, _now: SimTime, _ev: &SimEvent) {}

    #[inline(always)]
    fn finish(&mut self, _end: SimTime) {}
}

/// A dynamic set of probes, delivered to in attachment order.
pub type ProbeStack = Vec<Box<dyn Probe>>;

impl ProbeHost for ProbeStack {
    const ACTIVE: bool = true;

    #[inline]
    fn deliver(&mut self, now: SimTime, ev: &SimEvent) {
        for p in self.iter_mut() {
            p.on_event(now, ev);
        }
    }

    fn finish(&mut self, end: SimTime) {
        for p in self.iter_mut() {
            p.on_finish(end);
        }
    }
}

/// The probe that *is* the report: folds the event stream into the
/// engine's [`SimReport`] counters.
///
/// The record stage holds one of these statically (it is not boxed and
/// runs whether or not dynamic probes are attached), which is how the
/// report became bus-derived without a hot-path cost. Loop-level fields
/// the stream cannot see — `events`, `end_time`, the final
/// `out_of_order` total, `core_reallocations`, `core_busy_ns`,
/// restoration stats — are finalized by the engine after the drain.
#[derive(Debug)]
pub struct ReportProbe {
    /// The report being accumulated.
    pub(crate) report: SimReport,
}

impl ReportProbe {
    /// A zeroed report accumulator for `scheduler`.
    pub fn new(scheduler: &str, duration: SimTime, scale: f64) -> Self {
        ReportProbe {
            report: SimReport::new(scheduler, duration, scale),
        }
    }

    /// Fold one event into the report counters.
    #[inline]
    pub fn observe(&mut self, _now: SimTime, ev: &SimEvent) {
        match *ev {
            SimEvent::PacketArrived { service, .. } => {
                self.report.offered += 1;
                self.report.service_mut(service).offered += 1;
            }
            SimEvent::DivertedSlowPath { .. } => {
                self.report.slow_path += 1;
            }
            SimEvent::Migration { .. } => {
                self.report.migration_events += 1;
            }
            SimEvent::Dropped { service, .. } => {
                self.report.dropped += 1;
                self.report.service_mut(service).dropped += 1;
            }
            SimEvent::ServiceStart { cold, migrated, .. } => {
                if cold {
                    self.report.cold_starts += 1;
                }
                if migrated {
                    self.report.migrated_packets += 1;
                }
            }
            SimEvent::Departure {
                service,
                latency_ns,
                out_of_order,
                ..
            } => {
                self.report.processed += 1;
                self.report.service_mut(service).processed += 1;
                if out_of_order {
                    self.report.out_of_order += 1;
                    self.report.service_mut(service).out_of_order += 1;
                }
                self.report.latency.record(latency_ns);
            }
            SimEvent::Dispatched { .. }
            | SimEvent::ServiceEnd { .. }
            | SimEvent::ReorderDetected { .. }
            | SimEvent::CoreParked { .. }
            | SimEvent::CoreUnparked { .. }
            | SimEvent::CoreCrashed { .. }
            | SimEvent::CoreHealed { .. }
            | SimEvent::EpochTick => {}
        }
    }

    /// Hand the accumulated report out.
    pub fn into_report(self) -> SimReport {
        self.report
    }
}

/// A deterministic metric registry: one named counter per event kind
/// plus histograms of the stream's scalar payloads, all layered on
/// `detsim::stats`. Iteration order is fixed at compile time, so two
/// identical runs snapshot byte-identical metrics.
#[derive(Debug, Default)]
pub struct MetricsProbe {
    arrivals: Counter,
    slow_path: Counter,
    dispatched: Counter,
    migrations: Counter,
    drops: Counter,
    service_starts: Counter,
    cold_starts: Counter,
    departures: Counter,
    reorders: Counter,
    core_parks: Counter,
    core_wakes: Counter,
    epoch_ticks: Counter,
    core_crashes: Counter,
    core_heals: Counter,
    latency_ns: Histogram,
    service_ns: Histogram,
    queue_len: Histogram,
    reorder_extent: Histogram,
}

impl MetricsProbe {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// All counters as `(name, value)` pairs in a fixed, deterministic
    /// order (the declaration order above; fault counters are appended
    /// last so pre-fault positional consumers keep their indices).
    pub fn counters(&self) -> [(&'static str, u64); 14] {
        [
            ("arrivals", self.arrivals.get()),
            ("slow_path", self.slow_path.get()),
            ("dispatched", self.dispatched.get()),
            ("migrations", self.migrations.get()),
            ("drops", self.drops.get()),
            ("service_starts", self.service_starts.get()),
            ("cold_starts", self.cold_starts.get()),
            ("departures", self.departures.get()),
            ("reorders", self.reorders.get()),
            ("core_parks", self.core_parks.get()),
            ("core_wakes", self.core_wakes.get()),
            ("epoch_ticks", self.epoch_ticks.get()),
            ("core_crashes", self.core_crashes.get()),
            ("core_heals", self.core_heals.get()),
        ]
    }

    /// All histograms as `(name, histogram)` pairs in fixed order.
    pub fn histograms(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("latency_ns", &self.latency_ns),
            ("service_ns", &self.service_ns),
            ("queue_len", &self.queue_len),
            ("reorder_extent", &self.reorder_extent),
        ]
    }

    /// Render the registry as CSV: `metric,count,mean,p50,p99,max` (the
    /// distribution columns are empty for plain counters).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,count,mean,p50,p99,max\n");
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name},{v},,,,");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "{name},{},{:.1},{},{},{}",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max()
            );
        }
        out
    }
}

impl Probe for MetricsProbe {
    fn name(&self) -> &'static str {
        "metrics"
    }

    fn on_event(&mut self, _now: SimTime, ev: &SimEvent) {
        match *ev {
            SimEvent::PacketArrived { .. } => self.arrivals.incr(),
            SimEvent::DivertedSlowPath { .. } => self.slow_path.incr(),
            SimEvent::Dispatched { queue_len, .. } => {
                self.dispatched.incr();
                self.queue_len.record(queue_len as u64);
            }
            SimEvent::Migration { .. } => self.migrations.incr(),
            SimEvent::Dropped { .. } => self.drops.incr(),
            SimEvent::ServiceStart { cold, duration, .. } => {
                self.service_starts.incr();
                if cold {
                    self.cold_starts.incr();
                }
                self.service_ns.record(duration.as_nanos());
            }
            SimEvent::ServiceEnd { .. } => {}
            SimEvent::Departure { latency_ns, .. } => {
                self.departures.incr();
                self.latency_ns.record(latency_ns);
            }
            SimEvent::ReorderDetected { extent, .. } => {
                self.reorders.incr();
                self.reorder_extent.record(extent);
            }
            SimEvent::CoreParked { .. } => self.core_parks.incr(),
            SimEvent::CoreUnparked { .. } => self.core_wakes.incr(),
            SimEvent::CoreCrashed { .. } => self.core_crashes.incr(),
            SimEvent::CoreHealed { .. } => self.core_heals.incr(),
            SimEvent::EpochTick => self.epoch_ticks.incr(),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Per-core utilization over virtual time: busy nanoseconds accumulated
/// into fixed-width time buckets from `ServiceStart` spans (a span
/// crossing bucket edges is split proportionally). The raw material of a
/// utilization-timeline figure.
#[derive(Debug)]
pub struct UtilizationProbe {
    bucket: SimTime,
    /// `cores[core][bucket]` = busy nanoseconds; both axes grow on
    /// demand (amortized, allowed by the probe contract).
    cores: Vec<Vec<u64>>,
}

impl UtilizationProbe {
    /// A timeline with the given bucket width.
    ///
    /// # Panics
    /// Panics on a zero bucket width.
    pub fn new(bucket: SimTime) -> Self {
        assert!(bucket > SimTime::ZERO, "bucket width must be positive");
        UtilizationProbe {
            bucket,
            cores: Vec::new(),
        }
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimTime {
        self.bucket
    }

    /// Busy-fraction timeline of `core`: one entry per bucket, 0..1.
    pub fn timeline(&self, core: usize) -> Vec<f64> {
        let width = self.bucket.as_nanos() as f64;
        self.cores
            .get(core)
            .map(|b| b.iter().map(|&ns| ns as f64 / width).collect())
            .unwrap_or_default()
    }

    /// Number of cores that ever serviced a packet.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Render as CSV: `bucket_start_us,core,busy_frac`, bucket-major then
    /// core-major — a fixed order independent of event interleaving.
    pub fn to_csv(&self) -> String {
        let width_ns = self.bucket.as_nanos();
        let n_buckets = self.cores.iter().map(Vec::len).max().unwrap_or(0);
        let mut out = String::from("bucket_start_us,core,busy_frac\n");
        for b in 0..n_buckets {
            let start_us = (b as u64 * width_ns) as f64 / 1_000.0;
            for (core, buckets) in self.cores.iter().enumerate() {
                let busy = buckets.get(b).copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{start_us:.3},{core},{:.6}",
                    busy as f64 / width_ns as f64
                );
            }
        }
        out
    }

    /// Credit `ns` busy nanoseconds to `core` starting at `start`,
    /// splitting across bucket boundaries.
    fn credit(&mut self, core: usize, start: SimTime, ns: u64) {
        if core >= self.cores.len() {
            self.cores.resize_with(core + 1, Vec::new);
        }
        let Some(buckets) = self.cores.get_mut(core) else {
            return;
        };
        let width = self.bucket.as_nanos();
        let mut at = start.as_nanos();
        let mut left = ns;
        while left > 0 {
            let idx = (at / width) as usize;
            if idx >= buckets.len() {
                buckets.resize(idx + 1, 0);
            }
            let bucket_end = (idx as u64 + 1) * width;
            let take = left.min(bucket_end - at);
            if let Some(b) = buckets.get_mut(idx) {
                *b += take;
            }
            at += take;
            left -= take;
        }
    }
}

impl Probe for UtilizationProbe {
    fn name(&self) -> &'static str {
        "utilization"
    }

    fn on_event(&mut self, now: SimTime, ev: &SimEvent) {
        if let SimEvent::ServiceStart { core, duration, .. } = *ev {
            self.credit(core, now, duration.as_nanos());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A time-stamped log of the *rare* events the paper's analysis keys on:
/// migrations, reorder detections, drops, and core park/unpark
/// transitions. High-frequency events (arrivals, dispatches, service)
/// are deliberately excluded to keep the log proportional to the
/// interesting-event count, not the packet count.
#[derive(Debug, Default)]
pub struct EventLogProbe {
    entries: Vec<(SimTime, SimEvent)>,
}

impl EventLogProbe {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded `(time, event)` entries, in publication order.
    pub fn entries(&self) -> &[(SimTime, SimEvent)] {
        &self.entries
    }

    /// Render as CSV: `time_ns,kind,key,a,b` where the column meaning is
    /// per kind — `migration`: flow slot, from-core, to-core; `reorder`:
    /// flow slot, flow seq, extent; `drop`: flow slot, core, packet id;
    /// `park`/`unpark`: core (a, b empty).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,kind,key,a,b\n");
        for &(t, ev) in &self.entries {
            let ns = t.as_nanos();
            let _ = match ev {
                SimEvent::Migration { slot, from, to } => {
                    writeln!(out, "{ns},migration,{},{from},{to}", slot.raw())
                }
                SimEvent::ReorderDetected {
                    slot,
                    flow_seq,
                    extent,
                } => writeln!(out, "{ns},reorder,{},{flow_seq},{extent}", slot.raw()),
                SimEvent::Dropped { id, slot, core, .. } => {
                    writeln!(out, "{ns},drop,{},{core},{id}", slot.raw())
                }
                SimEvent::CoreParked { core } => writeln!(out, "{ns},park,{core},,"),
                SimEvent::CoreUnparked { core } => writeln!(out, "{ns},unpark,{core},,"),
                SimEvent::CoreCrashed { core } => writeln!(out, "{ns},crash,{core},,"),
                SimEvent::CoreHealed { core } => writeln!(out, "{ns},heal,{core},,"),
                _ => Ok(()),
            };
        }
        out
    }
}

impl Probe for EventLogProbe {
    fn name(&self) -> &'static str {
        "event-log"
    }

    fn on_event(&mut self, now: SimTime, ev: &SimEvent) {
        match ev {
            SimEvent::Migration { .. }
            | SimEvent::ReorderDetected { .. }
            | SimEvent::Dropped { .. }
            | SimEvent::CoreParked { .. }
            | SimEvent::CoreUnparked { .. }
            | SimEvent::CoreCrashed { .. }
            | SimEvent::CoreHealed { .. } => self.entries.push((now, *ev)),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nphash::FlowSlot;
    use nptraffic::ServiceKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn report_probe_folds_counters() {
        let mut rp = ReportProbe::new("test", t(100), 1.0);
        let svc = ServiceKind::IpForward;
        let slot = FlowSlot::new(0);
        rp.observe(
            t(0),
            &SimEvent::PacketArrived {
                id: 0,
                slot,
                service: svc,
                size: 64,
            },
        );
        rp.observe(
            t(1),
            &SimEvent::ServiceStart {
                core: 0,
                service: svc,
                cold: true,
                migrated: false,
                duration: t(1),
            },
        );
        rp.observe(
            t(2),
            &SimEvent::Departure {
                id: 0,
                slot,
                service: svc,
                latency_ns: 2_000,
                out_of_order: false,
            },
        );
        let r = rp.into_report();
        assert_eq!((r.offered, r.processed, r.cold_starts), (1, 1, 1));
        assert_eq!(r.per_service[svc.index()].offered, 1);
        assert_eq!(r.latency.count(), 1);
    }

    #[test]
    fn metrics_probe_counts_and_orders_deterministically() {
        let mut m = MetricsProbe::new();
        m.on_event(t(0), &SimEvent::EpochTick);
        m.on_event(
            t(1),
            &SimEvent::ReorderDetected {
                slot: FlowSlot::new(3),
                flow_seq: 9,
                extent: 2,
            },
        );
        let names: Vec<&str> = m.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names[0], "arrivals");
        assert_eq!(m.counters()[11], ("epoch_ticks", 1));
        assert_eq!(m.counters()[8], ("reorders", 1));
        assert_eq!(m.histograms()[3].1.max(), 2);
        let csv = m.to_csv();
        assert!(csv.starts_with("metric,count,mean,p50,p99,max\n"));
        assert!(csv.contains("epoch_ticks,1,,,,"));
    }

    #[test]
    fn utilization_probe_splits_spans_across_buckets() {
        let mut u = UtilizationProbe::new(t(10));
        // 15 µs of service starting at 5 µs: 5 µs in bucket 0, 10 in 1.
        u.on_event(
            t(5),
            &SimEvent::ServiceStart {
                core: 1,
                service: ServiceKind::IpForward,
                cold: false,
                migrated: false,
                duration: t(15),
            },
        );
        let tl = u.timeline(1);
        assert_eq!(tl.len(), 2);
        assert!((tl[0] - 0.5).abs() < 1e-12);
        assert!((tl[1] - 1.0).abs() < 1e-12);
        assert!(u.timeline(0).is_empty());
        let csv = u.to_csv();
        assert!(csv.starts_with("bucket_start_us,core,busy_frac\n"));
        assert!(csv.contains("10.000,1,1.000000"));
    }

    #[test]
    fn event_log_probe_keeps_rare_events_only() {
        let mut l = EventLogProbe::new();
        l.on_event(
            t(0),
            &SimEvent::PacketArrived {
                id: 0,
                slot: FlowSlot::new(0),
                service: ServiceKind::IpForward,
                size: 64,
            },
        );
        l.on_event(
            t(1),
            &SimEvent::Migration {
                slot: FlowSlot::new(7),
                from: 0,
                to: 3,
            },
        );
        l.on_event(t(2), &SimEvent::CoreParked { core: 5 });
        assert_eq!(l.entries().len(), 2);
        let csv = l.to_csv();
        assert!(csv.contains("1000,migration,7,0,3"));
        assert!(csv.contains("2000,park,5,,"));
    }

    #[test]
    fn probe_stack_delivers_in_order_and_downcasts() {
        let mut stack: ProbeStack = vec![
            Box::new(MetricsProbe::new()),
            Box::new(EventLogProbe::new()),
        ];
        stack.deliver(t(0), &SimEvent::EpochTick);
        stack.finish(t(1));
        let m = stack[0]
            .as_any()
            .downcast_ref::<MetricsProbe>()
            .expect("metrics probe downcasts");
        assert_eq!(m.counters()[11].1, 1);
    }

    #[test]
    fn unit_host_is_inactive() {
        const { assert!(!<() as ProbeHost>::ACTIVE) };
        const { assert!(<ProbeStack as ProbeHost>::ACTIVE) };
    }
}
