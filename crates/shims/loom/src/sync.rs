//! `loom::sync` — shim atomics whose every access is a schedule point.
//!
//! Each type wraps the corresponding `std::sync::atomic` type and calls
//! into the explorer before the underlying operation, so the scheduler
//! may interleave threads between any two atomic accesses. `Ordering`
//! is accepted for API compatibility but the model itself is
//! sequentially consistent (see the crate docs for what that does and
//! does not prove). Outside a [`crate::model`] run the schedule point
//! is a no-op and the types behave exactly like their std originals.

pub use std::sync::Arc;

/// Shim atomics: std semantics plus explorer schedule points.
pub mod atomic {
    use crate::sched::yield_point;
    use std::sync::atomic as std_atomic;

    pub use std_atomic::Ordering;

    macro_rules! shim_atomic {
        ($name:ident, $std:ident, $int:ty) => {
            /// Schedule-point wrapper around the std atomic.
            #[derive(Debug, Default)]
            pub struct $name(std_atomic::$std);

            impl $name {
                /// Create with an initial value.
                pub fn new(v: $int) -> Self {
                    Self(std_atomic::$std::new(v))
                }

                /// Atomic load (schedule point).
                pub fn load(&self, order: Ordering) -> $int {
                    yield_point();
                    self.0.load(order)
                }

                /// Atomic store (schedule point).
                pub fn store(&self, v: $int, order: Ordering) {
                    yield_point();
                    self.0.store(v, order);
                }

                /// Atomic swap (schedule point).
                pub fn swap(&self, v: $int, order: Ordering) -> $int {
                    yield_point();
                    self.0.swap(v, order)
                }

                /// Atomic add, returning the previous value (schedule point).
                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    yield_point();
                    self.0.fetch_add(v, order)
                }

                /// Atomic sub, returning the previous value (schedule point).
                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    yield_point();
                    self.0.fetch_sub(v, order)
                }

                /// Atomic compare-exchange (schedule point).
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    yield_point();
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-exchange; the shim never fails spuriously.
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    yield_point();
                    self.0.compare_exchange_weak(current, new, success, failure)
                }

                /// Non-atomic access for exclusive contexts (loom API).
                pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut $int) -> R) -> R {
                    f(self.0.get_mut())
                }

                /// Unwrap to the inner value.
                pub fn into_inner(self) -> $int {
                    self.0.into_inner()
                }
            }
        };
    }

    shim_atomic!(AtomicUsize, AtomicUsize, usize);
    shim_atomic!(AtomicU64, AtomicU64, u64);
    shim_atomic!(AtomicU32, AtomicU32, u32);

    /// Schedule-point wrapper around `std::sync::atomic::AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std_atomic::AtomicBool);

    impl AtomicBool {
        /// Create with an initial value.
        pub fn new(v: bool) -> Self {
            Self(std_atomic::AtomicBool::new(v))
        }

        /// Atomic load (schedule point).
        pub fn load(&self, order: Ordering) -> bool {
            yield_point();
            self.0.load(order)
        }

        /// Atomic store (schedule point).
        pub fn store(&self, v: bool, order: Ordering) {
            yield_point();
            self.0.store(v, order);
        }

        /// Atomic swap (schedule point).
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            yield_point();
            self.0.swap(v, order)
        }
    }

    /// Memory fence: a pure schedule point in the shim's SC model.
    pub fn fence(_order: Ordering) {
        yield_point();
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};

    #[test]
    fn atomics_work_outside_a_model() {
        let a = AtomicU64::new(1);
        a.store(7, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 7);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 7);
        assert_eq!(a.into_inner(), 8);
    }
}
