//! `loom::thread` — model threads scheduled by the explorer.
//!
//! [`spawn`] registers a model thread (a real OS thread gated so only
//! one model thread runs at a time) and is itself a schedule point, so
//! the explorer covers both "child runs first" and "parent continues"
//! orders. [`JoinHandle::join`] blocks the calling model thread until
//! the target retires, letting the scheduler run other threads in the
//! meantime — a deadlocked join is detected and reported.

use crate::sched::{current_ctx, yield_and_defer, yield_point};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread.
#[derive(Debug)]
pub struct JoinHandle<T> {
    target: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value.
    ///
    /// Mirrors `std::thread::JoinHandle::join`'s signature; if the
    /// target thread panicked the whole model execution is already
    /// being torn down, so the `Err` arm is never observed by tests.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, _) = current_ctx().expect("loom::thread::join outside a model run");
        exec.block_join(self.target);
        let value = self
            .result
            .lock()
            .expect("loom shim: result slot lock")
            .take();
        match value {
            Some(v) => Ok(v),
            // Retired without a value: the closure unwound. The
            // explorer is aborting; report a generic payload.
            None => Err(Box::new("loom model thread panicked")),
        }
    }
}

/// Spawn a model thread (schedule point).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, _) = current_ctx().expect("loom::thread::spawn outside a model run");
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let target = exec.spawn_model_thread(move || {
        let v = f();
        *slot.lock().expect("loom shim: result slot lock") = Some(v);
    });
    // The child is runnable: let the scheduler decide who goes next.
    yield_point();
    JoinHandle { target, result }
}

/// Defer the calling thread until another thread has been scheduled.
///
/// This is the loom contract that makes bounded spin loops explorable:
/// a `while try_pop() is None { yield_now() }` loop cannot be scheduled
/// back-to-back with itself while some other thread can make progress.
pub fn yield_now() {
    yield_and_defer();
}
