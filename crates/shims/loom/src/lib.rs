//! Offline stand-in for the [loom](https://github.com/tokio-rs/loom)
//! model checker.
//!
//! The build container resolves every external crate to an in-workspace
//! shim (see the workspace `Cargo.toml`), so `loom` gets one too — but a
//! pass-through shim would make the `--cfg loom` tests meaningless.
//! This crate therefore implements a real, if bounded, *interleaving
//! explorer*:
//!
//! * [`model`] runs the test closure repeatedly. All `loom::thread`
//!   threads are real OS threads, but a scheduler gate ensures exactly
//!   one runs at a time; every access through a `loom::sync::atomic`
//!   type (and every spawn/join/yield) is a *schedule point* where the
//!   scheduler may switch threads.
//! * Schedules are explored by depth-first search over the choice made
//!   at each schedule point: after an execution finishes, the last
//!   choice with an unexplored alternative is flipped and the execution
//!   reruns under that prefix. With a small, deterministic test body
//!   the search is exhaustive; a budget ([`MAX_EXECUTIONS`]) bounds
//!   pathological state spaces.
//! * `thread::yield_now` deprioritizes the calling thread until another
//!   thread has been scheduled — the loom contract that makes bounded
//!   spin loops (`while try_pop() is None { yield_now() }`) terminate
//!   instead of exploding the search.
//!
//! ## Fidelity
//!
//! Unlike real loom this shim models **sequential consistency**: it
//! explores every interleaving of atomic operations but not the extra
//! reorderings a relaxed memory model permits, and it does not track
//! `Acquire`/`Release` pairing. It proves the *protocol* (no lost or
//! duplicated slots, FIFO order, mark placement) under all schedules;
//! the memory-ordering annotations themselves are reviewed by the
//! `npcheck` `shared-state-audit` rule's mandatory
//! `// npcheck: ordering(..)` justifications and exercised dynamically
//! by the ThreadSanitizer CI build.

mod sched;

pub mod sync;
pub mod thread;

pub use sched::{model, MAX_EXECUTIONS, MAX_STEPS, PREEMPTION_BOUND};
