//! The schedule explorer: one gate, many reruns.
//!
//! Every model thread is a real OS thread parked on a condvar; the
//! scheduler admits exactly one at a time. A *schedule point* (atomic
//! access, spawn, join, yield) re-enters [`Exec::switch`], which picks
//! the next thread to admit from the runnable set. The pick is the DFS
//! choice: each execution records `(chosen index, candidate count)`
//! pairs, and [`next_prefix`] backtracks to the deepest pair with an
//! untried alternative.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Upper bound on executions explored per [`model`] call. Small
/// two-thread tests exhaust their true state space well below this; the
/// bound exists so an accidentally huge test degrades into a deep
/// deterministic sample instead of hanging CI.
pub const MAX_EXECUTIONS: usize = 20_000;

/// Upper bound on schedule points in a single execution; exceeding it
/// is reported as a livelock (a spin loop whose exit condition no other
/// thread can ever satisfy).
pub const MAX_STEPS: usize = 5_000;

/// Preemption bound (CHESS-style): the maximum number of *involuntary*
/// context switches per execution. Voluntary switches — `yield_now`,
/// blocking in `join`, thread exit — are always free, so every
/// execution runs to completion; the bound only limits where the
/// scheduler may additionally preempt a running thread. Unbounded DFS
/// over two threads of N schedule points is ~2^N schedules; bounding
/// preemptions to `k` cuts that to ~N^k, which the execution budget
/// exhausts — and empirically almost all interleaving bugs require
/// only a handful of preemptions (Musuvathi & Qadeer, PLDI '07).
pub const PREEMPTION_BOUND: usize = 3;

/// Panic payload used to unwind threads of an aborted execution; never
/// reported as a test failure itself.
struct AbortSignal;

#[derive(Default)]
struct State {
    /// Next thread id to hand out (0 is the root closure).
    next_tid: usize,
    /// Threads alive and eligible for scheduling, sorted.
    runnable: Vec<usize>,
    /// Threads that called `yield_now` and must not be rescheduled
    /// until a different thread has run (cleared at every pick).
    yielded: Vec<usize>,
    /// Threads whose closure has returned.
    finished: Vec<usize>,
    /// `(waiter, target)` pairs blocked in `join`.
    waiting_join: Vec<(usize, usize)>,
    /// The single admitted thread (`usize::MAX` = none).
    current: usize,
    /// Registered threads not yet finished.
    live: usize,
    /// Execution is being torn down (deadlock, livelock, or a panic in
    /// a model thread).
    abort: bool,
    /// First real panic message observed, surfaced by [`model`].
    panic_msg: Option<String>,
    /// Replay prefix from the previous execution's backtrack.
    prefix: Vec<usize>,
    /// `(chosen, candidates)` recorded at each schedule point.
    choices: Vec<(usize, usize)>,
    /// Schedule points taken so far.
    step: usize,
    /// Involuntary switches taken so far (see [`PREEMPTION_BOUND`]).
    preemptions: usize,
}

pub(crate) struct Exec {
    mx: Mutex<State>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(exec: Arc<Exec>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

/// Schedule point for the calling thread. Outside a [`model`] run this
/// is a no-op, so code exercised by plain `#[test]`s (std threads, no
/// explorer) still works against the shim types.
pub(crate) fn yield_point() {
    if let Some((exec, tid)) = current_ctx() {
        exec.switch(tid, false);
    }
}

/// `thread::yield_now` semantics: a schedule point that also blocks the
/// caller from being re-picked until another thread has run.
pub(crate) fn yield_and_defer() {
    if let Some((exec, tid)) = current_ctx() {
        exec.switch(tid, true);
    }
}

impl Exec {
    fn new(prefix: Vec<usize>) -> Self {
        Exec {
            mx: Mutex::new(State {
                next_tid: 1,
                runnable: vec![0],
                current: 0,
                live: 1,
                prefix,
                ..State::default()
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    /// Pick the next thread to admit. Called with the state locked at
    /// every schedule point, thread exit, and block.
    fn pick_next(st: &mut State) {
        let mut cands: Vec<usize> = st.runnable.clone();
        if cands.is_empty() {
            if st.live > 0 && !st.abort {
                st.abort = true;
                st.panic_msg.get_or_insert_with(|| {
                    format!(
                        "deadlock: {} live thread(s), none runnable (blocked joins: {:?})",
                        st.live, st.waiting_join
                    )
                });
            }
            st.current = usize::MAX;
            return;
        }
        // Honor yield_now: drop deferred threads from the candidate set
        // while anyone else can run.
        let eager: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|t| !st.yielded.contains(t))
            .collect();
        if !eager.is_empty() {
            cands = eager;
        }
        // Continuing the admitted thread is free; switching away from a
        // still-eligible one is a preemption. Order candidates with the
        // continuation first so DFS's default path is preemption-free,
        // and stop offering preemptions once the bound is spent.
        if let Some(pos) = cands.iter().position(|t| *t == st.current) {
            if st.preemptions >= PREEMPTION_BOUND {
                cands = vec![st.current];
            } else {
                cands.swap(0, pos);
                cands[1..].sort_unstable();
            }
        }
        let idx = if st.step < st.prefix.len() {
            // Replayed prefix; the model body must be deterministic, so
            // the candidate count matches — clamp defensively anyway.
            st.prefix[st.step].min(cands.len() - 1)
        } else {
            0
        };
        st.choices.push((idx, cands.len()));
        st.step += 1;
        if st.step > MAX_STEPS && !st.abort {
            st.abort = true;
            st.panic_msg
                .get_or_insert_with(|| format!("livelock: more than {MAX_STEPS} schedule points"));
        }
        let chosen = cands[idx];
        if chosen != st.current && cands.contains(&st.current) {
            st.preemptions += 1;
        }
        st.current = chosen;
        // Every deferred thread has now seen "another thread scheduled"
        // (or is itself the forced pick): clear the deferrals.
        st.yielded.clear();
    }

    /// Schedule point: record a choice, admit the picked thread, park
    /// until re-admitted.
    fn switch(&self, tid: usize, defer_self: bool) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortSignal);
        }
        debug_assert_eq!(st.current, tid, "switch from a non-admitted thread");
        if defer_self && st.runnable.len() > 1 {
            st.yielded.push(tid);
        }
        Self::pick_next(&mut st);
        self.cv.notify_all();
        st = self.wait_admitted(st, tid);
        drop(st);
    }

    /// Park until this thread is the admitted one (or the execution
    /// aborts, in which case unwind).
    fn wait_admitted<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        tid: usize,
    ) -> MutexGuard<'a, State> {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortSignal);
            }
            if st.current == tid {
                return st;
            }
            st = self.cv.wait(st).expect("loom shim: scheduler lock");
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.mx.lock().expect("loom shim: scheduler lock")
    }

    /// First park of a fresh thread: wait to be admitted without
    /// recording a choice (the spawn point already did).
    fn wait_first(&self, tid: usize) {
        let st = self.lock();
        let st = self.wait_admitted(st, tid);
        drop(st);
    }

    /// Register a new model thread; returns its id.
    fn register(&self) -> usize {
        let mut st = self.lock();
        let tid = st.next_tid;
        st.next_tid += 1;
        st.live += 1;
        st.runnable.push(tid);
        st.runnable.sort_unstable();
        tid
    }

    /// A model thread's closure returned (or unwound): retire it, wake
    /// its joiners, and admit someone else.
    fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.runnable.retain(|t| *t != tid);
        st.yielded.retain(|t| *t != tid);
        st.finished.push(tid);
        st.live -= 1;
        let woken: Vec<usize> = st
            .waiting_join
            .iter()
            .filter(|(_, target)| *target == tid)
            .map(|(waiter, _)| *waiter)
            .collect();
        st.waiting_join.retain(|(_, target)| *target != tid);
        st.runnable.extend(woken);
        st.runnable.sort_unstable();
        if st.current == tid || st.current == usize::MAX {
            Self::pick_next(&mut st);
        }
        self.cv.notify_all();
    }

    /// Block the caller until `target` finishes (join semantics).
    fn block_on_join(&self, tid: usize, target: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortSignal);
        }
        if !st.finished.contains(&target) {
            st.runnable.retain(|t| *t != tid);
            st.waiting_join.push((tid, target));
            Self::pick_next(&mut st);
            self.cv.notify_all();
            st = self.wait_admitted(st, tid);
        }
        drop(st);
    }

    /// A model thread panicked with a real (non-abort) payload: record
    /// the first message and tear the execution down.
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<AbortSignal>().is_some() {
            return;
        }
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "model thread panicked (non-string payload)".to_string());
        let mut st = self.lock();
        st.abort = true;
        st.panic_msg.get_or_insert(msg);
        self.cv.notify_all();
    }

    pub(crate) fn spawn_model_thread<F>(self: &Arc<Self>, f: F) -> usize
    where
        F: FnOnce() + Send + 'static,
    {
        let tid = self.register();
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                set_ctx(Arc::clone(&exec), tid);
                exec.wait_first(tid);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    exec.record_panic(payload);
                }
                exec.finish(tid);
            })
            .expect("loom shim: spawn model thread");
        self.os_handles
            .lock()
            .expect("loom shim: handle list lock")
            .push(handle);
        tid
    }

    pub(crate) fn block_join(&self, target: usize) {
        let (_, me) = current_ctx().expect("loom shim: join outside a model thread");
        self.block_on_join(me, target);
    }
}

/// Backtrack: flip the deepest choice with an untried alternative.
fn next_prefix(choices: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..choices.len()).rev() {
        let (chosen, cands) = choices[i];
        if chosen + 1 < cands {
            let mut prefix: Vec<usize> = choices[..i].iter().map(|(c, _)| *c).collect();
            prefix.push(chosen + 1);
            return Some(prefix);
        }
    }
    None
}

/// Explore the closure under every (bounded) thread interleaving.
///
/// Panics — failing the enclosing test — if any execution's assertion
/// fails, deadlocks, or livelocks; the panic message includes the
/// schedule so the failing interleaving can be reasoned about.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let exec = Arc::new(Exec::new(std::mem::take(&mut prefix)));
        {
            let root_exec = Arc::clone(&exec);
            let f = Arc::clone(&f);
            let root = std::thread::Builder::new()
                .name("loom-model-0".to_string())
                .spawn(move || {
                    set_ctx(Arc::clone(&root_exec), 0);
                    root_exec.wait_first(0);
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(move || f())) {
                        root_exec.record_panic(payload);
                    }
                    root_exec.finish(0);
                })
                .expect("loom shim: spawn root model thread");
            exec.os_handles
                .lock()
                .expect("loom shim: handle list lock")
                .push(root);
        }
        // Wait for every model thread of this execution to retire, then
        // reap the OS threads.
        {
            let mut st = exec.lock();
            while st.live > 0 {
                st = exec.cv.wait(st).expect("loom shim: scheduler lock");
            }
        }
        for handle in exec
            .os_handles
            .lock()
            .expect("loom shim: handle list lock")
            .drain(..)
        {
            let _ = handle.join();
        }
        let st = exec.lock();
        if let Some(msg) = &st.panic_msg {
            let schedule: Vec<usize> = st.choices.iter().map(|(c, _)| *c).collect();
            panic!("loom: execution {executions} failed: {msg}\n  schedule: {schedule:?}");
        }
        let choices = st.choices.clone();
        drop(st);
        match next_prefix(&choices) {
            None => break,
            Some(_) if executions >= MAX_EXECUTIONS => {
                eprintln!(
                    "loom (shim): execution budget {MAX_EXECUTIONS} reached before \
                     exhausting the schedule space; coverage is a deep deterministic sample"
                );
                break;
            }
            Some(p) => prefix = p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_model_runs_once() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        // No schedule points with alternatives => exactly one execution.
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backtrack_flips_deepest_choice() {
        assert_eq!(next_prefix(&[(0, 2), (1, 2)]), Some(vec![1]));
        assert_eq!(next_prefix(&[(0, 2), (0, 3)]), Some(vec![0, 1]));
        assert_eq!(next_prefix(&[(1, 2), (2, 3)]), None);
        assert_eq!(next_prefix(&[]), None);
    }

    #[test]
    fn two_thread_interleavings_are_explored() {
        // Two threads each bump a shared counter through a schedule
        // point; every execution must still see both increments.
        let execs = Arc::new(AtomicUsize::new(0));
        let e = Arc::clone(&execs);
        model(move || {
            e.fetch_add(1, Ordering::SeqCst);
            let n = Arc::new(crate::sync::atomic::AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                n2.fetch_add(1, crate::sync::atomic::Ordering::SeqCst);
            });
            n.fetch_add(1, crate::sync::atomic::Ordering::SeqCst);
            t.join().expect("model thread");
            assert_eq!(n.load(crate::sync::atomic::Ordering::SeqCst), 2);
        });
        // Spawn + two atomic ops across two threads: more than one
        // interleaving must have been explored.
        assert!(execs.load(Ordering::SeqCst) > 1, "{execs:?}");
    }

    #[test]
    fn explorer_finds_a_lost_update() {
        // Classic data race: two threads do a non-atomic read-modify-
        // write through separate load/store ops. Some interleaving
        // (load, load, store, store) loses one increment — the explorer
        // must find it and fail the model.
        use crate::sync::atomic::{AtomicUsize as ModelUsize, Ordering as O};
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let n = Arc::new(ModelUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    let v = n2.load(O::SeqCst);
                    n2.store(v + 1, O::SeqCst);
                });
                let v = n.load(O::SeqCst);
                n.store(v + 1, O::SeqCst);
                t.join().expect("model thread");
                assert_eq!(n.load(O::SeqCst), 2, "increment lost");
            });
        });
        assert!(
            result.is_err(),
            "the explorer must reach the lost-update interleaving"
        );
    }

    #[test]
    fn model_failure_reports_schedule() {
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let x = crate::sync::atomic::AtomicUsize::new(0);
                let v = x.load(crate::sync::atomic::Ordering::SeqCst);
                assert_eq!(v, 1, "deliberate failure");
            });
        });
        let err = result.expect_err("model must propagate the assertion");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("schedule"), "{msg}");
    }
}
