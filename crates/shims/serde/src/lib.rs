//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The container cannot reach crates.io, so the real `serde` cannot be
//! fetched. Call sites only need `#[derive(Serialize, Deserialize)]`
//! plus `serde_json::{to_string, to_string_pretty, from_str}`, so this
//! shim models serialization as conversion to/from an in-memory
//! [`Value`] tree; the sibling `serde_json` shim renders and parses the
//! tree as JSON text.
//!
//! Object keys keep **insertion order** (a `Vec` of pairs, not a map),
//! so serialized reports are byte-stable across runs — the same
//! determinism contract `npcheck` enforces on the simulation itself.

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory serialization tree (the shim's `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; never routed through `f64`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Convenience constructor used by derives.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::msg(format!("value {n} out of range for i64"))
                    })?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    /// Values beyond `u64::MAX` render as decimal strings (our JSON
    /// model has no 128-bit number); everything else stays numeric.
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(u128::from(*n)),
            Value::I64(n) if *n >= 0 => Ok(*n as u128),
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|e| Error::msg(format!("bad u128 `{s}`: {e}"))),
            other => Err(Error::msg(format!("expected u128, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::msg(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {got}")))
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Keys render via their own serialization; non-string keys are
        // stringified through the JSON writer downstream.
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        Value::U64(n) => n.to_string(),
                        Value::I64(n) => n.to_string(),
                        other => format!("{other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-5i32).to_value()), Ok(-5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let v: Vec<u16> = vec![1, 2, 3];
        assert_eq!(Vec::<u16>::from_value(&v.to_value()), Ok(v));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
