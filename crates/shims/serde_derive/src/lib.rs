//! Derive macros for the in-workspace serde shim.
//!
//! `syn`/`quote` are unavailable offline, so the item is parsed by
//! walking the raw `proc_macro::TokenStream`. Supported shapes — which
//! cover every derived type in this workspace — are:
//!
//! * structs with named fields          → JSON object, field order kept
//! * newtype structs `struct X(T);`     → transparent (inner value)
//! * enums of unit variants             → JSON string `"Variant"`
//! * enums with one-field tuple variants→ `{"Variant": inner}`
//!
//! Anything else (generics, multi-field tuples, struct variants) is a
//! compile error naming the unsupported construct, so a future refactor
//! fails loudly instead of serializing garbage.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the item parser extracted.
enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// `struct X(T);`
    Newtype,
    /// Enum variants: `(name, has_payload)`.
    Enum(Vec<(String, bool)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

/// Skip leading `#[...]` attributes (including doc comments) starting
/// at `i`; returns the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Struct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n == 1 {
                    Ok(Item {
                        name,
                        shape: Shape::Newtype,
                    })
                } else {
                    Err(format!(
                        "serde shim derive supports only 1-field tuple structs; `{name}` has {n}"
                    ))
                }
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{fname}`, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(fname);
    }
    Ok(fields)
}

/// Number of top-level comma-separated fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth: i32 = 0;
    let mut trailing = false;
    for t in &tokens {
        trailing = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    n += 1;
                    trailing = true;
                }
                _ => {}
            }
        }
    }
    if trailing {
        n -= 1;
    }
    n
}

/// Enum variants as `(name, has_payload)`.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let mut payload = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    return Err(format!(
                        "serde shim derive supports only 1-field tuple variants; `{vname}` differs"
                    ));
                }
                payload = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde shim derive does not support struct variant `{vname}`"
                ));
            }
            _ => {}
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => return Err(format!("expected `,` after `{vname}`, found {other:?}")),
        }
        variants.push((vname, payload));
    }
    Ok(variants)
}

/// `#[derive(Serialize)]` — emit `impl ::serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(inner))])"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())")
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl should tokenize")
}

/// `#[derive(Deserialize)]` — emit `impl ::serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|e| ::serde::Error::msg(format!(\"{name}.{f}: {{}}\", e.0)))?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Newtype => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v})"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "if let Some(inner) = v.get(\"{v}\") {{ return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)); }}"
                    )
                })
                .collect();
            let units = if unit_arms.is_empty() {
                "_ => {}".to_string()
            } else {
                format!("{}, _ => {{}}", unit_arms.join(", "))
            };
            format!(
                "if let ::serde::Value::Str(s) = v {{ match s.as_str() {{ {units} }} }}\n\
                 {payloads}\n\
                 Err(::serde::Error::msg(format!(\"no variant of {name} matches {{v:?}}\")))",
                payloads = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl should tokenize")
}
