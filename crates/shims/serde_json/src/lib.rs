//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, `to_writer_pretty`, and
//! the `Result`/`Error` aliases.
//!
//! Rendering is deterministic: object keys keep the order the
//! `Serialize` impl emitted them in (struct declaration order), floats
//! print via Rust's shortest-round-trip formatter, and there is no
//! hashing anywhere — two runs with identical inputs produce
//! byte-identical reports, which the `npcheck` determinism contract
//! relies on.

use serde::{Deserialize, Serialize, Value};

/// JSON error (parse or convert).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` pretty-printed into an `io::Write` sink.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize>(mut w: W, value: &T) -> Result<()> {
    let s = to_string_pretty(value)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error(format!("write: {e}")))
}

/// Parse a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---- writer ----------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() || f.is_infinite() {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep an explicit ".0" so integral floats parse back as F64.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error("unterminated string".to_string()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("laps".to_string())),
            ("cores".to_string(), Value::U64(12)),
            ("load".to_string(), Value::F64(0.75)),
            (
                "flags".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let s = {
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            out
        };
        assert_eq!(
            s,
            r#"{"name":"laps","cores":12,"load":0.75,"flags":[true,null]}"#
        );
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn pretty_is_stable() {
        let v = Value::Object(vec![("a".to_string(), Value::U64(1))]);
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn floats_keep_point() {
        let mut out = String::new();
        write_f64(3.0, &mut out);
        assert_eq!(out, "3.0");
        assert_eq!(parse_value("3.0").unwrap(), Value::F64(3.0));
    }

    #[test]
    fn string_escapes() {
        let s = "line\nwith \"quotes\" and \\ back";
        let mut out = String::new();
        write_escaped(s, &mut out);
        let parsed = parse_value(&out).unwrap();
        assert_eq!(parsed, Value::Str(s.to_string()));
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(parse_value("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse_value("1e3").unwrap(), Value::F64(1000.0));
    }
}
