//! Offline stand-in for the subset of `criterion` the bench harness
//! uses: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `Throughput`, `BenchmarkId`, and `black_box`.
//!
//! Measurement is deliberately simple — a warm-up pass, then a fixed
//! number of timed batches, reporting min/mean per iteration. It is a
//! smoke-level harness: good enough to catch order-of-magnitude
//! regressions and to keep every bench target compiling and runnable
//! offline, not a statistics engine.
//!
//! This crate is the *one* place outside `crates/bench` and
//! `experiments/bin/timing.rs` where wall-clock reads are sanctioned;
//! the `npcheck` wall-clock rule exempts it by path.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level bench context handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            group: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl BenchId, mut f: F) {
        run_bench("", &id.render(), None, 10, &mut f);
    }
}

/// Throughput annotation for per-element/byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput/sizing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Number of timed samples per bench (min 3 here).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(3);
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl BenchId, mut f: F) {
        run_bench(
            &self.group,
            &id.render(),
            self.throughput,
            self.sample_size,
            &mut f,
        );
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Things acceptable as a benchmark name (`&str` or `BenchmarkId`).
pub trait BenchId {
    /// Render to the printed name.
    fn render(&self) -> String;
}

impl BenchId for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl BenchId for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// Two-part benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl BenchId for BenchmarkId {
    fn render(&self) -> String {
        self.name.clone()
    }
}

/// Passed to the bench closure; `iter` times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, running enough iterations per sample to get above timer
    /// resolution, for `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that takes
        // ≥ ~5 ms per sample (or 1 if a single call is already slow).
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                hint::black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / b.iters_per_sample as f64;
    let min = b
        .samples
        .iter()
        .map(&per_iter)
        .fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().map(&per_iter).sum::<f64>() / b.samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (mean * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (mean * 1e-9))
        }
        None => String::new(),
    };
    println!("{label:<40} min {min:>12.1} ns/iter  mean {mean:>12.1} ns/iter{rate}");
}

/// Declare a bench group: `criterion_group!(benches, fn_a, fn_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran + 1)
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
