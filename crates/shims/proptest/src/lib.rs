//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Property tests keep their exact source form (`proptest! { fn f(x in
//! 0u64..100) {...} }`), but inputs are drawn from a **fixed-seed**
//! deterministic RNG — every run of the suite explores the same cases,
//! which is precisely the reproducibility contract `npcheck` enforces
//! on the simulations themselves. There is no shrinking: a failing case
//! prints its case index, and the fixed seeding makes it replayable.
//!
//! Supported strategy forms: integer/float ranges, `any::<T>()`,
//! `Just`, tuples (2–4), `proptest::collection::vec`, `.prop_map`, and
//! `prop_oneof!`.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Uniform};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derive the deterministic RNG for a (test, case) pair.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one input.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `.prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: Copy + SampleRangeValue> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_range(self.clone(), rng)
    }
}

/// Helper bridging `Range<T>` strategies onto the rand shim.
pub trait SampleRangeValue: Sized {
    /// Draw from a half-open range.
    fn sample_range(range: Range<Self>, rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample_range_value {
    ($($t:ty),*) => {$(
        impl SampleRangeValue for $t {
            fn sample_range(range: Range<Self>, rng: &mut StdRng) -> Self {
                SampleRange::sample_from(range, rng)
            }
        }
    )*};
}
impl_sample_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// `any::<T>()` — uniform over the whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over all of `T`.
pub fn any<T: Uniform>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Uniform> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Build from pre-boxed options; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        // Vec::get avoids indexing-panic lint noise; i is in range.
        self.options
            .get(i)
            .map(|s| s.sample(rng))
            .unwrap_or_else(|| unreachable!("gen_range bounded by len"))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

pub mod collection {
    //! Collection strategies.

    use super::{SampleRangeValue, Strategy};
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`] (`usize` = exact
    /// length, `Range<usize>` = drawn per case), mirroring upstream
    /// `Into<SizeRange>`.
    pub trait IntoSizeRange {
        /// Convert to a half-open range of lengths.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    /// Vec of values from `element`, length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = usize::sample_range(self.len.clone(), rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, Union,
    };
}

/// The property-test macro: same surface syntax as upstream `proptest!`,
/// expanded into a deterministic loop over seeded cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn name(arg in strategy, ...) { body }`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — plain assert (no shrink machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// `prop_oneof!` — uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::Union::new(vec![
            $(Box::new($s) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![Just(1u64), Just(10u64)], m in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(t == 1u64 || t == 10u64);
            prop_assert!(m <= 6);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::case_rng("t", 0);
        let mut b = crate::case_rng("t", 0);
        let s = crate::collection::vec(any::<u64>(), 0..50);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }
}
