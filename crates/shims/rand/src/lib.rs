//! Offline stand-in for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build container has no crates.io access, so the real `rand`
//! cannot be fetched. This shim keeps the call sites source-compatible
//! (`Rng`, `SeedableRng`, `rngs::StdRng`) while being **deterministic
//! by construction**: `StdRng` is xoshiro256++ seeded via SplitMix64
//! from a caller-supplied `u64`. There is deliberately no `thread_rng`
//! and no `random()` — entropy-backed constructors are exactly what the
//! `npcheck` determinism lint forbids in simulation crates.
//!
//! Draw sequences differ from upstream `rand`'s `StdRng` (ChaCha12);
//! everything in this workspace derives expectations from the seeded
//! stream itself, never from hard-coded upstream vectors.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from an RNG (the shim's analogue of
/// `Standard: Distribution<T>`).
pub trait Uniform: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled from (`gen_range` argument), mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range, like
    /// upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, far below anything a simulation can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((lo..hi.wrapping_add(1)).sample_from(rng).wrapping_sub(lo))
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` this workspace calls.
pub trait Rng: RngCore {
    /// Uniform draw of `T` (integers: full range; floats: `[0, 1)`).
    fn gen<T: Uniform>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor the workspace
    /// uses; full-width `from_seed` is intentionally omitted).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64. Not the upstream ChaCha12 `StdRng`, but a
    /// high-quality, reproducible stream — which is all the simulations
    /// require.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let a1: u64 = a.gen();
        let c1: u64 = c.gen();
        assert_ne!(a1, c1);
    }

    use super::RngCore;

    #[test]
    fn floats_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v = r.gen_range(0..4u8);
            assert!(v < 4);
            seen[v as usize] = true;
            let w = r.gen_range(10..=12u32);
            assert!((10..=12).contains(&w));
            let f = r.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
