//! Toeplitz hash (Microsoft RSS).
//!
//! Included as the commodity-NIC comparison point: receive-side scaling is
//! the deployed ancestor of the paper's hash-based flow pinning. Verified
//! against the published verification-suite vectors.

use crate::flow::FlowId;

/// The well-known 40-byte RSS verification key.
pub const MS_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// A Toeplitz hasher over a secret key.
#[derive(Debug, Clone)]
pub struct ToeplitzHasher {
    key: Vec<u8>,
}

impl Default for ToeplitzHasher {
    fn default() -> Self {
        Self::new(&MS_RSS_KEY)
    }
}

impl ToeplitzHasher {
    /// Construct with an explicit key. The key must be at least
    /// `input_len + 4` bytes for the inputs you plan to hash; the standard
    /// 40-byte key covers IPv4 2-tuples and 4-tuples.
    pub fn new(key: &[u8]) -> Self {
        ToeplitzHasher { key: key.to_vec() }
    }

    /// Hash an arbitrary input (MSB-first Toeplitz matrix multiply).
    pub fn hash_bytes(&self, input: &[u8]) -> u32 {
        assert!(
            self.key.len() >= input.len() + 4,
            "key too short: {} bytes for {}-byte input",
            self.key.len(),
            input.len()
        );
        let mut result: u32 = 0;
        // The 32-bit window into the key, advanced one bit per input bit.
        let mut window = u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        let mut next_byte = 4;
        let mut bits_consumed = 0u32;
        for &byte in input {
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= window;
                }
                // Slide the window one bit left, pulling in the next key bit.
                let next_bit = if next_byte < self.key.len() {
                    (self.key[next_byte] >> (7 - bits_consumed % 8)) & 1
                } else {
                    0
                };
                window = (window << 1) | next_bit as u32;
                bits_consumed += 1;
                if bits_consumed.is_multiple_of(8) {
                    next_byte += 1;
                }
            }
        }
        result
    }

    /// RSS hash of an IPv4 4-tuple (src addr, dst addr, src port, dst
    /// port) — the "with ports" variant of the verification suite.
    pub fn hash_v4_tuple(&self, flow: FlowId) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&flow.src_ip.to_be_bytes());
        input[4..8].copy_from_slice(&flow.dst_ip.to_be_bytes());
        input[8..10].copy_from_slice(&flow.src_port.to_be_bytes());
        input[10..12].copy_from_slice(&flow.dst_port.to_be_bytes());
        self.hash_bytes(&input)
    }

    /// RSS hash of the IPv4 2-tuple (src addr, dst addr) — "without
    /// ports".
    pub fn hash_v4_addrs(&self, flow: FlowId) -> u32 {
        let mut input = [0u8; 8];
        input[0..4].copy_from_slice(&flow.src_ip.to_be_bytes());
        input[4..8].copy_from_slice(&flow.dst_ip.to_be_bytes());
        self.hash_bytes(&input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Microsoft RSS verification-suite vectors (IPv4).
    /// (destination, source, with-ports hash, without-ports hash)
    fn vectors() -> Vec<(FlowId, u32, u32)> {
        vec![
            (
                FlowId::v4([66, 9, 149, 187], [161, 142, 100, 80], 2794, 1766, 6),
                0x51cc_c178,
                0x323e_8fc2,
            ),
            (
                FlowId::v4([199, 92, 111, 2], [65, 69, 140, 83], 14230, 4739, 6),
                0xc626_b0ea,
                0xd718_262a,
            ),
            (
                FlowId::v4([24, 19, 198, 95], [12, 22, 207, 184], 12898, 38024, 6),
                0x5c2b_394a,
                0xd2d0_a5de,
            ),
        ]
    }

    #[test]
    fn ms_verification_suite_with_ports() {
        let h = ToeplitzHasher::default();
        for (flow, with_ports, _) in vectors() {
            assert_eq!(h.hash_v4_tuple(flow), with_ports, "flow {flow}");
        }
    }

    #[test]
    fn ms_verification_suite_without_ports() {
        let h = ToeplitzHasher::default();
        for (flow, _, without_ports) in vectors() {
            assert_eq!(h.hash_v4_addrs(flow), without_ports, "flow {flow}");
        }
    }

    #[test]
    fn zero_input_hashes_to_zero() {
        let h = ToeplitzHasher::default();
        assert_eq!(h.hash_bytes(&[0u8; 12]), 0);
    }

    #[test]
    #[should_panic(expected = "key too short")]
    fn short_key_panics() {
        let h = ToeplitzHasher::new(&[0u8; 8]);
        h.hash_bytes(&[0u8; 12]);
    }

    #[test]
    fn linearity_property() {
        // Toeplitz is GF(2)-linear: H(a ^ b) == H(a) ^ H(b).
        let h = ToeplitzHasher::default();
        let a = [0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0];
        let b = [0x0fu8, 0x1e, 0x2d, 0x3c, 0x4b, 0x5a, 0x69, 0x78];
        let ab: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        assert_eq!(h.hash_bytes(&ab), h.hash_bytes(&a) ^ h.hash_bytes(&b));
    }
}
