//! # nphash — packet-header hashing substrate
//!
//! Everything the LAPS scheduler (ICPP 2013) needs to turn a packet header
//! into a core ID:
//!
//! * [`FlowId`] — the 5-tuple flow identifier (source/destination IP,
//!   source/destination port, protocol).
//! * [`crc`] — CRC16-CCITT (the hash the paper uses, shown by Cao et al.
//!   to balance IP headers well), CRC16-ARC, and CRC32C, each with both a
//!   bitwise reference implementation and a table-driven fast path.
//! * [`toeplitz`] — the Microsoft RSS Toeplitz hash, included as the
//!   "what commodity NICs do" comparison point.
//! * [`incremental`] — the paper's *incremental hashing* (§III-C): a
//!   linear-hashing scheme where growing a service from `b` to `b+1`
//!   buckets only remaps the flows of the single bucket being split.
//! * [`maptable`] — a per-service map table: bucket list + incremental
//!   hash → core ID, with grow/shrink operations used by dynamic core
//!   allocation.
//! * [`interner`] — dense flow interning ([`FlowInterner`] /
//!   [`FlowSlot`]): every distinct flow is hashed **once**, on first
//!   emission; all later per-flow state is a plain array index, keeping
//!   the simulator's per-packet path as hash-free as the hardware the
//!   paper models.
//! * [`det`] — fixed-seed hashed collections ([`DetHashMap`],
//!   [`DetHashSet`]) for reproducible simulation state; required by the
//!   `npcheck` determinism contract in place of std's randomly-seeded
//!   maps.
//!
//! ```
//! use nphash::{FlowId, MapTable};
//!
//! // A 4-core service; flows hash onto the 4 cores.
//! let mut table: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3]);
//! let flow = FlowId::v4([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80, 6);
//! let before = table.lookup(flow);
//!
//! // Granting a 5th core splits exactly one bucket.
//! table.add_core(4);
//! let after = table.lookup(flow);
//! assert!(after == before || after == 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod det;
pub mod flow;
pub mod incremental;
pub mod interner;
pub mod maptable;
pub mod toeplitz;

pub use crc::{crc16_arc, crc16_ccitt, crc16_ccitt_batch, crc32c, Crc16Ccitt};
pub use det::{DetHashMap, DetHashSet};
pub use flow::FlowId;
pub use incremental::IncrementalHash;
pub use interner::{FlowInterner, FlowSlot};
pub use maptable::MapTable;
pub use toeplitz::ToeplitzHasher;
