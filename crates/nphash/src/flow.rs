//! Flow identifiers.
//!
//! "In this work, a flow is a set of packets which have the same source
//! IP, destination IP, source port, destination port and protocol" (§I).

use crate::crc::Crc16Ccitt;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A 5-tuple flow identifier (IPv4).
///
/// Stored as raw integers in host order; [`FlowId::to_bytes`] produces the
/// canonical 13-byte big-endian encoding hashed by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, …).
    pub protocol: u8,
}

impl FlowId {
    /// Construct from raw fields.
    pub const fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, protocol: u8) -> Self {
        FlowId {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol,
        }
    }

    /// Construct from dotted-quad octets.
    pub const fn v4(
        src: [u8; 4],
        dst: [u8; 4],
        src_port: u16,
        dst_port: u16,
        protocol: u8,
    ) -> Self {
        FlowId {
            src_ip: u32::from_be_bytes(src),
            dst_ip: u32::from_be_bytes(dst),
            src_port,
            dst_port,
            protocol,
        }
    }

    /// Synthesize a flow ID from a dense index (used by the trace
    /// generator: flow *n* of a synthetic trace). The mapping is injective
    /// and scatters consecutive indices across the tuple space so that the
    /// CRC sees realistic-looking headers.
    pub fn from_index(index: u64) -> Self {
        // SplitMix64 finalizer: bijective on u64, well-scattered.
        let mut z = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FlowId {
            src_ip: (z >> 32) as u32,
            dst_ip: z as u32,
            // Ports/protocol derived from the index itself keep the map
            // injective even across the (vanishingly unlikely) 64→64 bit
            // structure above.
            src_port: (index & 0xFFFF) as u16,
            dst_port: ((index >> 16) & 0xFFFF) as u16,
            protocol: if index & 1 == 0 { 6 } else { 17 },
        }
    }

    /// Canonical 13-byte big-endian header encoding (the hash input).
    pub fn to_bytes(self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.protocol;
        b
    }

    /// CRC16-CCITT of the canonical encoding, using a caller-held table.
    #[inline]
    pub fn crc16(self, table: &Crc16Ccitt) -> u16 {
        table.hash(&self.to_bytes())
    }

    /// The direction-normalized form of this flow: the lexicographically
    /// smaller of `(self, self.reversed())`. Both directions of a
    /// connection share one canonical ID, so hashing the canonical form
    /// pins request and response traffic to the same core — the
    /// *symmetric RSS* trick used by stateful middleboxes (the firewall /
    /// IDS services of Fig. 5 need exactly this).
    pub fn canonical(self) -> FlowId {
        let r = self.reversed();
        if (self.src_ip, self.src_port) <= (r.src_ip, r.src_port) {
            self
        } else {
            r
        }
    }

    /// The reverse direction of this flow (src/dst swapped).
    pub fn reversed(self) -> FlowId {
        FlowId {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.src_ip.to_be_bytes();
        let d = self.dst_ip.to_be_bytes();
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} proto {}",
            s[0],
            s[1],
            s[2],
            s[3],
            self.src_port,
            d[0],
            d[1],
            d[2],
            d[3],
            self.dst_port,
            self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn bytes_roundtrip_fields() {
        let f = FlowId::v4([192, 168, 1, 2], [10, 0, 0, 1], 443, 51000, 6);
        let b = f.to_bytes();
        assert_eq!(&b[0..4], &[192, 168, 1, 2]);
        assert_eq!(&b[4..8], &[10, 0, 0, 1]);
        assert_eq!(u16::from_be_bytes([b[8], b[9]]), 443);
        assert_eq!(u16::from_be_bytes([b[10], b[11]]), 51000);
        assert_eq!(b[12], 6);
    }

    #[test]
    fn from_index_is_injective_on_prefix() {
        let mut seen = BTreeSet::new();
        for i in 0..200_000u64 {
            assert!(seen.insert(FlowId::from_index(i)), "collision at {i}");
        }
    }

    #[test]
    fn from_index_crc_spread_is_uniformish() {
        // Hashing synthetic flows through CRC16 % 16 should hit all 16
        // buckets within a small sample — the property hash scheduling
        // relies on.
        let table = Crc16Ccitt::new();
        let mut counts = [0u32; 16];
        for i in 0..16_000u64 {
            counts[(FlowId::from_index(i).crc16(&table) % 16) as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(c > 700 && c < 1300, "bucket {b} count {c} far from uniform");
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let f = FlowId::v4([1, 2, 3, 4], [5, 6, 7, 8], 10, 20, 17);
        let r = f.reversed();
        assert_eq!(r.src_ip, f.dst_ip);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn canonical_is_direction_invariant() {
        for i in 0..1_000u64 {
            let f = FlowId::from_index(i);
            assert_eq!(f.canonical(), f.reversed().canonical(), "flow {i}");
            // Canonical form is one of the two directions.
            let c = f.canonical();
            assert!(c == f || c == f.reversed());
            // Idempotent.
            assert_eq!(c.canonical(), c);
        }
    }

    #[test]
    fn canonical_hash_pins_both_directions_together() {
        let table = Crc16Ccitt::new();
        for i in 0..200u64 {
            let f = FlowId::from_index(i);
            let a = table.hash(&f.canonical().to_bytes()) % 16;
            let b = table.hash(&f.reversed().canonical().to_bytes()) % 16;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn display_is_human_readable() {
        let f = FlowId::v4([1, 2, 3, 4], [5, 6, 7, 8], 10, 20, 6);
        assert_eq!(format!("{f}"), "1.2.3.4:10 -> 5.6.7.8:20 proto 6");
    }
}
