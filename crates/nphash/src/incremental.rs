//! Incremental (linear) hashing — §III-C of the paper.
//!
//! A service starts with `m` map-table buckets and hash `h₁(k) = H(k) mod
//! m`. When an extra core is granted, the bucket count `b` grows by one
//! and the flows of exactly one bucket are split between their old bucket
//! and the new one, using `h₂(k) = H(k) mod 2m`:
//!
//! ```text
//! h(k) = h₂(k)   if h₁(k) <  b − m      (bucket already split)
//!        h₁(k)   if h₁(k) >= b − m      (bucket not yet split)
//! ```
//!
//! When `b` reaches `2m`, the base doubles (`m ← 2m`) and splitting starts
//! over. Shrinking reverses a split: the highest bucket merges back into
//! its parent. The payoff (verified by property tests here) is that one
//! grow step remaps only ~`1/b` of the flow space — the minimum possible —
//! instead of the ~`1 − 1/b` a naive `mod b` rehash would remap.

use serde::{Deserialize, Serialize};

/// Incremental hash state: `(m, b)` with `m ≤ b ≤ 2m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncrementalHash {
    m: u32,
    b: u32,
}

impl IncrementalHash {
    /// Start with `initial_buckets` buckets (the paper's `m`). Must be ≥ 1.
    ///
    /// # Panics
    /// Panics if `initial_buckets == 0`.
    pub fn new(initial_buckets: u32) -> Self {
        assert!(initial_buckets >= 1, "need at least one bucket");
        IncrementalHash {
            m: initial_buckets,
            b: initial_buckets,
        }
    }

    /// Current number of buckets in use (`b`).
    pub fn buckets(&self) -> u32 {
        self.b
    }

    /// Current base modulus (`m`).
    pub fn base(&self) -> u32 {
        self.m
    }

    /// Map a raw hash value to a bucket index `< b`.
    #[inline]
    pub fn bucket(&self, hash: u64) -> u32 {
        let h1 = (hash % self.m as u64) as u32;
        if h1 < self.b - self.m {
            (hash % (2 * self.m as u64)) as u32
        } else {
            h1
        }
    }

    /// Add one bucket (a core was granted). Returns the index of the new
    /// bucket (`b_old`), whose flows come from bucket `b_old − m`.
    pub fn grow(&mut self) -> u32 {
        if self.b == 2 * self.m {
            self.m *= 2;
        }
        let new_bucket = self.b;
        self.b += 1;
        new_bucket
    }

    /// Remove the highest bucket (a core was released). Its flows merge
    /// back into bucket `b_new − m` (the parent). Returns the index of the
    /// removed bucket, or `None` if only one bucket remains.
    pub fn shrink(&mut self) -> Option<u32> {
        if self.b <= 1 {
            return None;
        }
        if self.b == self.m {
            // All buckets are "unsplit" under the current base; halve it
            // so the top bucket becomes a split bucket that can merge.
            self.m /= 2;
            if self.m == 0 {
                self.m = 1;
            }
        }
        self.b -= 1;
        Some(self.b)
    }

    /// The parent bucket that bucket `child` splits from / merges into,
    /// under the current base. Only meaningful for `child >= m`.
    pub fn parent_of(&self, child: u32) -> u32 {
        if child >= self.m {
            child - self.m
        } else {
            child
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_always_in_range() {
        let mut ih = IncrementalHash::new(4);
        for _ in 0..40 {
            for h in 0..10_000u64 {
                let bk = ih.bucket(h.wrapping_mul(0x9E3779B97F4A7C15));
                assert!(bk < ih.buckets(), "bucket {bk} >= b {}", ih.buckets());
            }
            ih.grow();
        }
    }

    #[test]
    fn grow_splits_exactly_one_bucket() {
        let mut ih = IncrementalHash::new(4);
        let hashes: Vec<u64> = (0..20_000u64).map(|h| h.wrapping_mul(2654435761)).collect();
        for _ in 0..12 {
            let before: Vec<u32> = hashes.iter().map(|&h| ih.bucket(h)).collect();
            let new_bucket = ih.grow();
            let parent = ih.parent_of(new_bucket);
            for (&h, &old) in hashes.iter().zip(before.iter()) {
                let new = ih.bucket(h);
                if new != old {
                    // Only flows of the split bucket move, and only to the
                    // new bucket.
                    assert_eq!(old, parent, "flow moved from non-split bucket {old}");
                    assert_eq!(new, new_bucket);
                }
            }
        }
    }

    #[test]
    fn grow_remaps_small_fraction() {
        let mut ih = IncrementalHash::new(8);
        let hashes: Vec<u64> = (0..50_000u64)
            .map(|h| h.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let before: Vec<u32> = hashes.iter().map(|&h| ih.bucket(h)).collect();
        ih.grow();
        let moved = hashes
            .iter()
            .zip(before.iter())
            .filter(|(&h, &old)| ih.bucket(h) != old)
            .count();
        // Expected: half of bucket 0 ≈ 1/16 of flows; allow slack.
        let frac = moved as f64 / hashes.len() as f64;
        assert!(frac < 0.10, "grow remapped {frac:.3} of flows");
        assert!(
            frac > 0.01,
            "grow remapped suspiciously few flows ({frac:.4})"
        );
    }

    #[test]
    fn shrink_is_inverse_of_grow() {
        let mut ih = IncrementalHash::new(4);
        let hashes: Vec<u64> = (0..5_000u64).map(|h| h.wrapping_mul(48271)).collect();
        let before: Vec<u32> = hashes.iter().map(|&h| ih.bucket(h)).collect();
        let state0 = ih;
        ih.grow();
        ih.shrink();
        assert_eq!(ih, state0);
        let after: Vec<u32> = hashes.iter().map(|&h| ih.bucket(h)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn base_doubles_at_2m() {
        let mut ih = IncrementalHash::new(4);
        for _ in 0..4 {
            ih.grow();
        }
        assert_eq!(ih.buckets(), 8);
        assert_eq!(ih.base(), 4);
        ih.grow(); // b was 2m → base doubles first
        assert_eq!(ih.buckets(), 9);
        assert_eq!(ih.base(), 8);
    }

    #[test]
    fn shrink_to_one_and_floor() {
        let mut ih = IncrementalHash::new(4);
        for _ in 0..3 {
            assert!(ih.shrink().is_some());
        }
        assert_eq!(ih.buckets(), 1);
        assert_eq!(ih.shrink(), None);
        assert_eq!(ih.buckets(), 1);
        for h in 0..100 {
            assert_eq!(ih.bucket(h), 0);
        }
    }

    #[test]
    fn grow_from_one_bucket() {
        let mut ih = IncrementalHash::new(1);
        assert_eq!(ih.bucket(12345), 0);
        ih.grow();
        assert_eq!(ih.buckets(), 2);
        // Both buckets reachable.
        let mut seen = [false; 2];
        for h in 0..100u64 {
            seen[ih.bucket(h) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
