//! Cyclic-redundancy-code hash functions.
//!
//! The paper hashes the 5-tuple with **CRC16** ("CRC16 is shown to provide
//! good performance for hashing IP headers" — Cao, Wang & Zegura,
//! INFOCOM 2000). We provide the two common CRC16 variants plus CRC32C.
//! The default entry points ([`crc16_ccitt`], [`crc16_arc`], [`crc32c`])
//! are table-driven — `const`-built 256-entry tables, and slice-by-4 for
//! CRC32C — while the `*_bitwise` functions remain as independent oracles
//! that unit and property tests pin the tables against, together with the
//! published check values.

/// Bitwise CRC16-CCITT-FALSE (poly `0x1021`, init `0xFFFF`, no reflection).
///
/// Check value: `crc16_ccitt_bitwise(b"123456789") == 0x29B1`. Reference
/// oracle for the table-driven [`crc16_ccitt`].
pub fn crc16_ccitt_bitwise(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Bitwise CRC16-ARC (poly `0x8005` reflected = `0xA001`, init `0x0000`).
///
/// Check value: `crc16_arc_bitwise(b"123456789") == 0xBB3D`. Reference
/// oracle for the table-driven [`crc16_arc`].
pub fn crc16_arc_bitwise(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= byte as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Bitwise CRC32C (Castagnoli, reflected poly `0x82F63B78`).
///
/// Check value: `crc32c_bitwise(b"123456789") == 0xE3069283`. Reference
/// oracle for the slice-by-4 [`crc32c`].
pub fn crc32c_bitwise(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x82F6_3B78;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// One table entry for the non-reflected CCITT polynomial.
const fn ccitt_entry(i: u16) -> u16 {
    let mut crc = i << 8;
    let mut bit = 0;
    while bit < 8 {
        if crc & 0x8000 != 0 {
            crc = (crc << 1) ^ 0x1021;
        } else {
            crc <<= 1;
        }
        bit += 1;
    }
    crc
}

/// The 256-entry CCITT table, built at compile time.
const fn ccitt_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = ccitt_entry(i as u16);
        i += 1;
    }
    table
}

static CCITT_TABLE: [u16; 256] = ccitt_table();

/// One table entry for a reflected 16-bit polynomial.
const fn reflected16_entry(i: u16, poly: u16) -> u16 {
    let mut crc = i;
    let mut bit = 0;
    while bit < 8 {
        if crc & 1 != 0 {
            crc = (crc >> 1) ^ poly;
        } else {
            crc >>= 1;
        }
        bit += 1;
    }
    crc
}

/// The 256-entry ARC table, built at compile time.
const fn arc_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = reflected16_entry(i as u16, 0xA001);
        i += 1;
    }
    table
}

static ARC_TABLE: [u16; 256] = arc_table();

/// One table entry for a reflected 32-bit polynomial.
const fn reflected32_entry(i: u32, poly: u32) -> u32 {
    let mut crc = i;
    let mut bit = 0;
    while bit < 8 {
        if crc & 1 != 0 {
            crc = (crc >> 1) ^ poly;
        } else {
            crc >>= 1;
        }
        bit += 1;
    }
    crc
}

/// The four 256-entry CRC32C tables for slice-by-4, built at compile
/// time. `[0]` is the classic byte-at-a-time table; `[k]` advances a byte
/// `k` positions further through the shift register.
const fn crc32c_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        t[0][i] = reflected32_entry(i as u32, 0x82F6_3B78);
        i += 1;
    }
    let mut k = 1;
    while k < 4 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC32C_TABLES: [[u32; 256]; 4] = crc32c_tables();

/// Table-driven CRC16-CCITT-FALSE — the default fast path.
///
/// Check value: `crc16_ccitt(b"123456789") == 0x29B1`.
#[inline]
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        let idx = ((crc >> 8) ^ byte as u16) as usize & 0xFF;
        crc = (crc << 8) ^ CCITT_TABLE[idx];
    }
    crc
}

/// Table-driven CRC16-ARC — the default fast path.
///
/// Check value: `crc16_arc(b"123456789") == 0xBB3D`.
#[inline]
pub fn crc16_arc(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        let idx = ((crc ^ byte as u16) & 0xFF) as usize;
        crc = (crc >> 8) ^ ARC_TABLE[idx];
    }
    crc
}

/// Slice-by-4 CRC32C — the default fast path. Processes four bytes per
/// iteration through four parallel tables, then finishes the tail
/// byte-at-a-time.
///
/// Check value: `crc32c(b"123456789") == 0xE3069283`.
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        // chunks_exact(4) guarantees the length; to_le_bytes-style
        // decomposition keeps this endian-independent.
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let x = crc ^ word;
        crc = CRC32C_TABLES[3][(x & 0xFF) as usize]
            ^ CRC32C_TABLES[2][((x >> 8) & 0xFF) as usize]
            ^ CRC32C_TABLES[1][((x >> 16) & 0xFF) as usize]
            ^ CRC32C_TABLES[0][((x >> 24) & 0xFF) as usize];
    }
    for &byte in chunks.remainder() {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32C_TABLES[0][idx];
    }
    !crc
}

/// Table-driven CRC16-CCITT-FALSE over a batch of fixed-width keys,
/// four lanes in lockstep.
///
/// Each lane is the same table-driven recurrence as [`crc16_ccitt`] —
/// branchless per byte — but interleaving four independent shift
/// registers lets the four table loads of a byte step issue together,
/// hiding the load-to-use latency that serializes the one-key loop
/// (the classic multi-lane CRC idiom; same technique as slice-by-4,
/// applied across keys instead of within one). Results are bit-exact
/// with the scalar path: the remainder (`keys.len() % 4`) falls back to
/// [`crc16_ccitt`] per key.
///
/// # Panics
/// Panics if `out.len() != keys.len()`.
pub fn crc16_ccitt_batch<const W: usize>(keys: &[[u8; W]], out: &mut [u16]) {
    assert_eq!(keys.len(), out.len(), "one output slot per key is required");
    let mut lanes = keys.chunks_exact(4).zip(out.chunks_exact_mut(4));
    for (k, o) in &mut lanes {
        let (mut a, mut b, mut c, mut d) = (0xFFFFu16, 0xFFFFu16, 0xFFFFu16, 0xFFFFu16);
        for j in 0..W {
            a = (a << 8) ^ CCITT_TABLE[(((a >> 8) ^ k[0][j] as u16) & 0xFF) as usize];
            b = (b << 8) ^ CCITT_TABLE[(((b >> 8) ^ k[1][j] as u16) & 0xFF) as usize];
            c = (c << 8) ^ CCITT_TABLE[(((c >> 8) ^ k[2][j] as u16) & 0xFF) as usize];
            d = (d << 8) ^ CCITT_TABLE[(((d >> 8) ^ k[3][j] as u16) & 0xFF) as usize];
        }
        o[0] = a;
        o[1] = b;
        o[2] = c;
        o[3] = d;
    }
    let done = keys.len() - keys.len() % 4;
    for (k, o) in keys[done..].iter().zip(out[done..].iter_mut()) {
        *o = crc16_ccitt(k);
    }
}

/// Table-driven CRC16-CCITT-FALSE as a value type.
///
/// This is the scheduler's hot path (§III-G: "the critical path is
/// dominated by hash delay"); the 256-entry table is shared and
/// `const`-built, so construction is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crc16Ccitt;

impl Crc16Ccitt {
    /// Construct (the table is a compile-time constant; nothing to build).
    pub const fn new() -> Self {
        Crc16Ccitt
    }

    /// Hash a byte slice.
    #[inline]
    pub fn hash(&self, data: &[u8]) -> u16 {
        crc16_ccitt(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    #[test]
    fn check_values_both_ways() {
        // Published check values, table-driven and bitwise.
        assert_eq!(crc16_ccitt(CHECK), 0x29B1);
        assert_eq!(crc16_ccitt_bitwise(CHECK), 0x29B1);
        assert_eq!(crc16_arc(CHECK), 0xBB3D);
        assert_eq!(crc16_arc_bitwise(CHECK), 0xBB3D);
        assert_eq!(crc32c(CHECK), 0xE306_9283);
        assert_eq!(crc32c_bitwise(CHECK), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
        assert_eq!(crc16_ccitt_bitwise(b""), 0xFFFF);
        assert_eq!(crc16_arc(b""), 0x0000);
        assert_eq!(crc16_arc_bitwise(b""), 0x0000);
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c_bitwise(b""), 0x0000_0000);
    }

    #[test]
    fn tables_match_bitwise_on_varied_inputs() {
        // Lengths 1..300 with pseudo-random bytes cover every tail length
        // of the slice-by-4 loop and every table index.
        let mut data = Vec::new();
        for i in 0..300u32 {
            data.push((i.wrapping_mul(2654435761) >> 24) as u8);
            assert_eq!(
                crc16_ccitt(&data),
                crc16_ccitt_bitwise(&data),
                "ccitt len={}",
                data.len()
            );
            assert_eq!(
                crc16_arc(&data),
                crc16_arc_bitwise(&data),
                "arc len={}",
                data.len()
            );
            assert_eq!(
                crc32c(&data),
                crc32c_bitwise(&data),
                "crc32c len={}",
                data.len()
            );
        }
    }

    #[test]
    fn batch_matches_scalar_every_lane_and_tail() {
        // Batch sizes 0..13 cover empty input, every remainder lane
        // count, and multiple full 4-lane blocks; 13-byte keys match the
        // 5-tuple width the map tables hash.
        for n in 0..13usize {
            let keys: Vec<[u8; 13]> = (0..n)
                .map(|i| {
                    let mut k = [0u8; 13];
                    for (j, b) in k.iter_mut().enumerate() {
                        *b = ((i * 31 + j * 7) as u32).wrapping_mul(2654435761) as u8;
                    }
                    k
                })
                .collect();
            let mut out = vec![0u16; n];
            crc16_ccitt_batch(&keys, &mut out);
            for (k, &got) in keys.iter().zip(out.iter()) {
                assert_eq!(got, crc16_ccitt(k), "n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per key")]
    fn batch_rejects_mismatched_lengths() {
        let keys = [[0u8; 8]; 2];
        let mut out = [0u16; 3];
        crc16_ccitt_batch(&keys, &mut out);
    }

    #[test]
    fn crc16_value_type_matches_free_fn() {
        let t = Crc16Ccitt::new();
        assert_eq!(t.hash(CHECK), crc16_ccitt(CHECK));
        assert_eq!(t.hash(b""), 0xFFFF);
    }

    #[test]
    fn single_bit_sensitivity() {
        // Flipping any single bit of a 13-byte header changes the CRC
        // (CRC16 detects all single-bit errors).
        let base = [0u8; 13];
        let h0 = crc16_ccitt_bitwise(&base);
        for byte in 0..13 {
            for bit in 0..8 {
                let mut m = base;
                m[byte] ^= 1 << bit;
                assert_ne!(crc16_ccitt_bitwise(&m), h0);
            }
        }
    }
}
