//! Cyclic-redundancy-code hash functions.
//!
//! The paper hashes the 5-tuple with **CRC16** ("CRC16 is shown to provide
//! good performance for hashing IP headers" — Cao, Wang & Zegura,
//! INFOCOM 2000). We provide the two common CRC16 variants plus CRC32C,
//! each as a bitwise reference and a byte-table fast path; unit and
//! property tests pin the two against each other and against published
//! check values.

/// Bitwise CRC16-CCITT-FALSE (poly `0x1021`, init `0xFFFF`, no reflection).
///
/// Check value: `crc16_ccitt(b"123456789") == 0x29B1`.
pub fn crc16_ccitt_bitwise(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Bitwise CRC16-ARC (poly `0x8005` reflected = `0xA001`, init `0x0000`).
///
/// Check value: `crc16_arc(b"123456789") == 0xBB3D`.
pub fn crc16_arc(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= byte as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Bitwise CRC32C (Castagnoli, reflected poly `0x82F63B78`).
///
/// Check value: `crc32c(b"123456789") == 0xE3069283`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x82F6_3B78;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// Table-driven CRC16-CCITT-FALSE.
///
/// This is the scheduler's hot path (§III-G: "the critical path is
/// dominated by hash delay"); the 256-entry table is built once at
/// construction.
#[derive(Debug, Clone)]
pub struct Crc16Ccitt {
    table: [u16; 256],
}

impl Default for Crc16Ccitt {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc16Ccitt {
    /// Build the lookup table.
    pub fn new() -> Self {
        let mut table = [0u16; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = (i as u16) << 8;
            for _ in 0..8 {
                if crc & 0x8000 != 0 {
                    crc = (crc << 1) ^ 0x1021;
                } else {
                    crc <<= 1;
                }
            }
            *slot = crc;
        }
        Crc16Ccitt { table }
    }

    /// Hash a byte slice.
    #[inline]
    pub fn hash(&self, data: &[u8]) -> u16 {
        let mut crc: u16 = 0xFFFF;
        for &byte in data {
            let idx = ((crc >> 8) ^ byte as u16) as usize;
            crc = (crc << 8) ^ self.table[idx];
        }
        crc
    }
}

/// Convenience: table-driven CRC16-CCITT via a thread-local table.
///
/// Callers on the hot path should hold their own [`Crc16Ccitt`]; this
/// helper is for tests and one-off use.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    thread_local! {
        static TABLE: Crc16Ccitt = Crc16Ccitt::new();
    }
    TABLE.with(|t| t.hash(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    #[test]
    fn ccitt_check_value() {
        assert_eq!(crc16_ccitt_bitwise(CHECK), 0x29B1);
        assert_eq!(crc16_ccitt(CHECK), 0x29B1);
    }

    #[test]
    fn arc_check_value() {
        assert_eq!(crc16_arc(CHECK), 0xBB3D);
    }

    #[test]
    fn crc32c_check_value() {
        assert_eq!(crc32c(CHECK), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16_ccitt_bitwise(b""), 0xFFFF);
        assert_eq!(crc16_arc(b""), 0x0000);
        assert_eq!(crc32c(b""), 0x0000_0000);
    }

    #[test]
    fn table_matches_bitwise_on_varied_inputs() {
        let t = Crc16Ccitt::new();
        let mut data = Vec::new();
        for i in 0..300u32 {
            data.push((i.wrapping_mul(2654435761) >> 24) as u8);
            assert_eq!(
                t.hash(&data),
                crc16_ccitt_bitwise(&data),
                "len={}",
                data.len()
            );
        }
    }

    #[test]
    fn single_bit_sensitivity() {
        // Flipping any single bit of a 13-byte header changes the CRC
        // (CRC16 detects all single-bit errors).
        let base = [0u8; 13];
        let h0 = crc16_ccitt_bitwise(&base);
        for byte in 0..13 {
            for bit in 0..8 {
                let mut m = base;
                m[byte] ^= 1 << bit;
                assert_ne!(crc16_ccitt_bitwise(&m), h0);
            }
        }
    }
}
