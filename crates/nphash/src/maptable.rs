//! Per-service map tables: bucket list + incremental hash → core ID.
//!
//! "We propose to partition the cores among multiple services of a router
//! with a separate map table for each service" (§I). Each service owns a
//! `MapTable`; looking up a packet costs one CRC16 plus one array index —
//! the critical path analyzed in §III-G.

use crate::crc::Crc16Ccitt;
use crate::flow::FlowId;
use crate::incremental::IncrementalHash;

/// A service's map table.
///
/// Generic over the core-identifier type `C` so the scheduler crates can
/// use their own `CoreId` newtype without a dependency cycle.
#[derive(Debug, Clone)]
pub struct MapTable<C> {
    hash: IncrementalHash,
    /// `cores[i]` is the core that owns bucket `i`; `cores.len() == b`.
    cores: Vec<C>,
    crc: Crc16Ccitt,
    /// Monotone version counter, bumped by every redirect-style mutation
    /// ([`MapTable::redirect_bucket`]). A dispatcher that caches lookups
    /// (the npexec thread-per-core runtime caches bucket → ring routes)
    /// compares epochs instead of diffing the bucket list.
    epoch: u64,
}

impl<C: Copy + Eq> MapTable<C> {
    /// Build a table over the given initial cores (one bucket per core).
    ///
    /// # Panics
    /// Panics if `cores` is empty.
    pub fn new(cores: Vec<C>) -> Self {
        assert!(!cores.is_empty(), "a service needs at least one core");
        MapTable {
            hash: IncrementalHash::new(cores.len() as u32),
            cores,
            crc: Crc16Ccitt::new(),
            epoch: 0,
        }
    }

    /// The table's redirect epoch: starts at 0 and bumps on every
    /// [`MapTable::redirect_bucket`]. Stable across plain lookups.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of buckets (== number of cores allocated to the service).
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The cores currently in the bucket list, bucket order.
    pub fn cores(&self) -> &[C] {
        &self.cores
    }

    /// Whether `core` is in the bucket list.
    pub fn contains(&self, core: C) -> bool {
        self.cores.contains(&core)
    }

    /// Map a flow to its core: CRC16 over the 5-tuple, incremental hash to
    /// a bucket, bucket list to a core.
    #[inline]
    pub fn lookup(&self, flow: FlowId) -> C {
        let h = self.crc.hash(&flow.to_bytes()) as u64;
        self.cores[self.hash.bucket(h) as usize]
    }

    /// Map a pre-computed raw hash to its core (lets callers share one
    /// CRC evaluation between the map table and the AFD sampling logic).
    #[inline]
    pub fn lookup_hash(&self, raw_hash: u64) -> C {
        self.cores[self.hash.bucket(raw_hash) as usize]
    }

    /// Map a burst of flows to their cores in one pass: the 5-tuples are
    /// hashed with the four-lane lockstep
    /// [`crc16_ccitt_batch`](crate::crc::crc16_ccitt_batch) (hiding the
    /// CRC table's load-to-use latency across packets of the burst) and
    /// then mapped through the bucket list. Result `out[i]` is exactly
    /// `self.lookup(flows[i])`.
    ///
    /// # Panics
    /// Panics if `out.len() != flows.len()`.
    pub fn lookup_batch(&self, flows: &[FlowId], out: &mut [C]) {
        assert_eq!(
            flows.len(),
            out.len(),
            "one output slot per flow is required"
        );
        const LANES: usize = 32;
        let mut keys = [[0u8; 13]; LANES];
        let mut hashes = [0u16; LANES];
        for (chunk, outs) in flows.chunks(LANES).zip(out.chunks_mut(LANES)) {
            for (k, &f) in keys.iter_mut().zip(chunk.iter()) {
                *k = f.to_bytes();
            }
            let n = chunk.len();
            crate::crc::crc16_ccitt_batch(&keys[..n], &mut hashes[..n]);
            for (o, &h) in outs.iter_mut().zip(hashes.iter()) {
                *o = self.cores[self.hash.bucket(h as u64) as usize];
            }
        }
    }

    /// The bucket index a flow maps to.
    pub fn bucket_of(&self, flow: FlowId) -> u32 {
        let h = self.crc.hash(&flow.to_bytes()) as u64;
        self.hash.bucket(h)
    }

    /// Grant `core` to this service: grows the bucket list by one using
    /// incremental hashing, so only the flows of the split bucket migrate.
    pub fn add_core(&mut self, core: C) {
        self.hash.grow();
        self.cores.push(core);
    }

    /// Remove `core` from the service, shrinking the bucket list.
    ///
    /// The paper removes the released core's ID from the bucket list and
    /// shifts the others ("Other core IDs will be shifted to take the
    /// place of this ID", §III-D). We implement that as: swap the released
    /// core's bucket with the last bucket, then merge the last bucket into
    /// its parent via [`IncrementalHash::shrink`]. Flows of the released
    /// core's bucket and of the merged bucket migrate; everything else
    /// stays put.
    ///
    /// Returns `true` if the core was present and removed. Refuses (returns
    /// `false`) to remove the last core.
    pub fn remove_core(&mut self, core: C) -> bool {
        if self.cores.len() <= 1 {
            return false;
        }
        let Some(pos) = self.cores.iter().position(|&c| c == core) else {
            return false;
        };
        let last = self.cores.len() - 1;
        self.cores.swap(pos, last);
        self.cores.pop();
        self.hash.shrink();
        true
    }

    /// Reassign bucket `bucket` to `core` (used by the *arbitrary flow
    /// shift* baseline, which remaps whole buckets on imbalance).
    ///
    /// # Panics
    /// Panics if `bucket` is out of range.
    pub fn reassign_bucket(&mut self, bucket: u32, core: C) {
        self.cores[bucket as usize] = core;
    }

    /// Redirect bucket `bucket` to `core` as one step of a migration
    /// handshake, bumping and returning the table's epoch. Semantically
    /// this is [`MapTable::reassign_bucket`] plus version accounting: the
    /// npexec dispatcher redirects a flow group's bucket *after* pushing
    /// the migration mark into the old core's ring, and the returned
    /// epoch tags the handshake so stale cached routes are detectable.
    ///
    /// # Panics
    /// Panics if `bucket` is out of range.
    pub fn redirect_bucket(&mut self, bucket: u32, core: C) -> u64 {
        self.cores[bucket as usize] = core;
        self.epoch += 1;
        self.epoch
    }

    /// Reassign every bucket owned by `core` to the given replacement
    /// cores (round-robin), *without* shrinking the bucket list. Exactly
    /// the flows resident on `core` migrate — the minimum-migration
    /// repair for a crashed core. ([`MapTable::remove_core`] would also
    /// migrate the merged top bucket's flows, and would renumber buckets
    /// so an exact undo on heal is impossible.) Returns the retired
    /// bucket indices so the caller can undo the retirement via
    /// [`MapTable::restore_core`]; empty (and the table unchanged) when
    /// `core` owns no buckets or `replacements` is empty.
    pub fn retire_core(&mut self, core: C, replacements: &[C]) -> Vec<u32> {
        if replacements.is_empty() {
            return Vec::new();
        }
        let buckets = self.buckets_of_core(core);
        for (i, &b) in buckets.iter().enumerate() {
            self.cores[b as usize] = replacements[i % replacements.len()];
        }
        buckets
    }

    /// Give the listed buckets back to `core` — the inverse of
    /// [`MapTable::retire_core`], restoring the exact pre-crash mapping
    /// on heal (the flows that migrated off the crashed core, and only
    /// those, migrate back). Out-of-range buckets are ignored; callers
    /// that resized the table since retirement guard with
    /// [`MapTable::len`].
    pub fn restore_core(&mut self, core: C, buckets: &[u32]) {
        for &b in buckets {
            if let Some(slot) = self.cores.get_mut(b as usize) {
                *slot = core;
            }
        }
    }

    /// Buckets currently assigned to `core`.
    pub fn buckets_of_core(&self, core: C) -> Vec<u32> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == core)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(n: u64) -> Vec<FlowId> {
        (0..n).map(FlowId::from_index).collect()
    }

    #[test]
    fn lookup_is_stable() {
        let t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3]);
        for f in flows(100) {
            assert_eq!(t.lookup(f), t.lookup(f));
            assert!(t.lookup(f) < 4);
        }
    }

    #[test]
    fn add_core_minimal_migration() {
        let mut t: MapTable<u32> = MapTable::new(vec![10, 11, 12, 13]);
        let fs = flows(20_000);
        let before: Vec<u32> = fs.iter().map(|&f| t.lookup(f)).collect();
        t.add_core(14);
        let mut moved = 0;
        for (f, &old) in fs.iter().zip(before.iter()) {
            let new = t.lookup(*f);
            if new != old {
                assert_eq!(new, 14, "migrated flow must land on the new core");
                moved += 1;
            }
        }
        // Splitting one of 4 buckets moves half its flows: ≈ 1/8 of all.
        let frac = moved as f64 / fs.len() as f64;
        assert!(frac < 0.16, "fraction moved {frac}");
        assert!(moved > 0);
    }

    #[test]
    fn remove_last_added_core_restores_mapping() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3]);
        let fs = flows(5_000);
        let before: Vec<u32> = fs.iter().map(|&f| t.lookup(f)).collect();
        t.add_core(4);
        assert!(t.remove_core(4));
        let after: Vec<u32> = fs.iter().map(|&f| t.lookup(f)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn remove_interior_core_bounded_migration() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let fs = flows(20_000);
        let before: Vec<u32> = fs.iter().map(|&f| t.lookup(f)).collect();
        assert!(t.remove_core(2));
        assert!(!t.contains(2));
        assert_eq!(t.len(), 7);
        let moved = fs
            .iter()
            .zip(before.iter())
            .filter(|(&f, &old)| t.lookup(f) != old)
            .count();
        // Only former bucket-2 flows plus the merged top bucket move:
        // ≈ 2/8 of the space.
        let frac = moved as f64 / fs.len() as f64;
        assert!(frac < 0.35, "fraction moved {frac}");
        // No flow may map to the removed core.
        for &f in &fs {
            assert_ne!(t.lookup(f), 2);
        }
    }

    #[test]
    fn refuses_to_remove_last_core() {
        let mut t: MapTable<u32> = MapTable::new(vec![7]);
        assert!(!t.remove_core(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_absent_core_is_noop() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1]);
        assert!(!t.remove_core(99));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reassign_bucket_moves_whole_bucket() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3]);
        let fs = flows(10_000);
        let target_bucket = 1u32;
        t.reassign_bucket(target_bucket, 9);
        for &f in &fs {
            if t.bucket_of(f) == target_bucket {
                assert_eq!(t.lookup(f), 9);
            } else {
                assert_ne!(t.lookup(f), 9);
            }
        }
        assert_eq!(t.buckets_of_core(9), vec![1]);
    }

    #[test]
    fn retire_core_migrates_only_resident_flows() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let fs = flows(20_000);
        let before: Vec<u32> = fs.iter().map(|&f| t.lookup(f)).collect();
        let retired = t.retire_core(2, &[0, 1]);
        assert_eq!(retired, vec![2]);
        assert_eq!(t.len(), 8, "retirement never shrinks the table");
        for (f, &old) in fs.iter().zip(before.iter()) {
            let new = t.lookup(*f);
            assert_ne!(new, 2, "no flow may map to the retired core");
            if old != 2 {
                assert_eq!(new, old, "only the retired core's flows migrate");
            }
        }
    }

    #[test]
    fn restore_core_is_exact_inverse_of_retire() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3]);
        let fs = flows(5_000);
        let before: Vec<u32> = fs.iter().map(|&f| t.lookup(f)).collect();
        let retired = t.retire_core(1, &[3]);
        t.restore_core(1, &retired);
        let after: Vec<u32> = fs.iter().map(|&f| t.lookup(f)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn retire_with_no_replacements_is_noop() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1]);
        assert!(t.retire_core(0, &[]).is_empty());
        assert_eq!(t.cores(), &[0, 1]);
    }

    #[test]
    fn redirect_bucket_bumps_epoch_and_moves_bucket() {
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3]);
        assert_eq!(t.epoch(), 0);
        let e1 = t.redirect_bucket(2, 9);
        assert_eq!(e1, 1);
        assert_eq!(t.epoch(), 1);
        let fs = flows(5_000);
        for &f in &fs {
            if t.bucket_of(f) == 2 {
                assert_eq!(t.lookup(f), 9);
            }
        }
        let e2 = t.redirect_bucket(2, 2);
        assert_eq!(e2, 2, "epoch is monotone even when restoring the owner");
    }

    #[test]
    fn plain_mutations_leave_epoch_alone() {
        // Only redirect-style mutations version the table; structural
        // grow/shrink and crash repair keep their own bookkeeping.
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3]);
        t.add_core(4);
        t.reassign_bucket(0, 4);
        let retired = t.retire_core(1, &[0]);
        t.restore_core(1, &retired);
        assert!(t.remove_core(4));
        assert_eq!(t.epoch(), 0);
    }

    #[test]
    fn lookup_batch_matches_lookup() {
        // Sizes cover empty, sub-lane, exact-lane, and multi-chunk
        // bursts; the batch path must be invisible to the mapping.
        let mut t: MapTable<u32> = MapTable::new(vec![0, 1, 2, 3, 4]);
        t.add_core(5); // non-power-of-two bucket count
        for n in [0usize, 1, 3, 4, 31, 32, 33, 100] {
            let fs = flows(n as u64);
            let mut out = vec![u32::MAX; n];
            t.lookup_batch(&fs, &mut out);
            for (&f, &got) in fs.iter().zip(out.iter()) {
                assert_eq!(got, t.lookup(f), "n={n}");
            }
        }
    }

    #[test]
    fn lookup_hash_matches_lookup() {
        let t: MapTable<u32> = MapTable::new(vec![0, 1, 2]);
        let crc = Crc16Ccitt::new();
        for f in flows(500) {
            assert_eq!(t.lookup(f), t.lookup_hash(crc.hash(&f.to_bytes()) as u64));
        }
    }
}
