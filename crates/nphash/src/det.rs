//! Deterministic hashed collections.
//!
//! `std::collections::HashMap` seeds its SipHash keys from OS entropy at
//! process start, so *iteration order differs between runs*. Any code
//! that iterates such a map — to pick a victim flow, emit a report, or
//! drain a queue — silently breaks the byte-reproducibility the
//! simulation depends on (same seed ⇒ same report; see DESIGN.md,
//! "Determinism contract"). The `npcheck` linter denies raw
//! `HashMap`/`HashSet` in simulation crates for exactly this reason.
//!
//! [`DetHashMap`] and [`DetHashSet`] are drop-in aliases backed by
//! [`DetState`], a fixed-seed FxHash-style hasher: the same keys always
//! hash the same way, in every run, on every host. Iteration order is
//! still *arbitrary* (insertion history dependent) — but it is the same
//! arbitrary order every run, which is what reproducibility needs.
//! Where a *meaningful* order is required (reports, sorted output), use
//! `BTreeMap`/`BTreeSet` instead.

// npcheck: allow(nondet-collections) — this module DEFINES the deterministic wrappers
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` with a fixed-seed hasher: reproducible across runs.
// npcheck: allow(nondet-collections) — alias pins the hasher to DetState
pub type DetHashMap<K, V> = HashMap<K, V, DetState>;

/// A `HashSet` with a fixed-seed hasher: reproducible across runs.
// npcheck: allow(nondet-collections) — alias pins the hasher to DetState
pub type DetHashSet<T> = HashSet<T, DetState>;

/// Fixed-seed `BuildHasher` for [`DetHashMap`] / [`DetHashSet`].
pub type DetState = BuildHasherDefault<FxHasher>;

/// 64-bit multiply-rotate hasher (the rustc FxHash recipe), seedless by
/// construction — `Default` always yields the identical initial state.
///
/// Not DoS-resistant; the simulator hashes its own flow IDs, not
/// attacker-controlled input, and determinism is worth more here than
/// flood resistance.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const ROTATE: u32 = 5;
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            // npcheck: allow(hot-path-panic) — rem.len() < 8 by chunks_exact contract
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// Construct an empty [`DetHashMap`].
///
/// `DetHashMap::new()` does not exist (std only offers `new` for the
/// `RandomState` default), so use this or `DetHashMap::default()`.
pub fn det_map<K, V>() -> DetHashMap<K, V> {
    DetHashMap::default()
}

/// Construct an empty [`DetHashSet`].
pub fn det_set<T>() -> DetHashSet<T> {
    DetHashSet::default()
}

/// Construct a [`DetHashMap`] with room for `cap` entries.
pub fn det_map_with_capacity<K, V>(cap: usize) -> DetHashMap<K, V> {
    DetHashMap::with_capacity_and_hasher(cap, DetState::default())
}

/// Construct a [`DetHashSet`] with room for `cap` entries.
pub fn det_set_with_capacity<T>(cap: usize) -> DetHashSet<T> {
    DetHashSet::with_capacity_and_hasher(cap, DetState::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn identical_values_hash_identically() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"flow"), hash_one(&"flow"));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
    }

    #[test]
    fn build_hasher_default_is_stateless() {
        let s1 = DetState::default();
        let s2 = DetState::default();
        assert_eq!(s1.hash_one(1234u64), s2.hash_one(1234u64));
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let build = || {
            let mut m: DetHashMap<u64, u64> = det_map();
            for k in 0..1000u64 {
                m.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), k);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "same inserts must iterate identically");
    }

    #[test]
    fn set_behaves_like_a_set() {
        let mut s: DetHashSet<u32> = det_set_with_capacity(8);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unaligned_byte_writes_are_stable() {
        // Exercises the chunks_exact remainder path.
        assert_eq!(hash_one(&[1u8, 2, 3]), hash_one(&[1u8, 2, 3]));
        assert_ne!(hash_one(&[1u8, 2, 3]), hash_one(&[1u8, 2, 4]));
    }
}
