//! Flow interning: dense, deterministic `FlowId` → [`FlowSlot`] arena.
//!
//! The per-packet path of a network processor cannot afford a hash-map
//! probe per packet (the whole premise of the paper's map-table design).
//! The simulator honors the same discipline: every distinct [`FlowId`] is
//! *interned* once — the first time any source emits it — into a dense
//! `u32` slot, and every later touch of per-flow state is a plain array
//! index.
//!
//! Determinism: slots are assigned in first-emission order. Because the
//! engine drives sources from a deterministic event queue and each source
//! replays a deterministic header stream, the sequence of first emissions
//! — and therefore the `FlowId → FlowSlot` assignment — is a pure
//! function of the configuration and seed. No iteration order of any hash
//! map is ever observed.

use crate::det::{det_map_with_capacity, DetHashMap};
use crate::flow::FlowId;

/// A dense index for an interned flow, assigned by [`FlowInterner`].
///
/// Slots are consecutive `u32`s starting at 0, so per-flow state lives in
/// plain `Vec`s indexed by slot instead of hash maps keyed by
/// [`FlowId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowSlot(u32);

impl FlowSlot {
    /// Construct from a raw dense index.
    pub const fn new(index: u32) -> Self {
        FlowSlot(index)
    }

    /// The raw dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw dense index as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<FlowSlot> for usize {
    fn from(s: FlowSlot) -> usize {
        s.index()
    }
}

/// Interns [`FlowId`]s into dense [`FlowSlot`]s, first-come first-slotted.
///
/// The map is probed **once per distinct flow** (on first emission);
/// steady-state packet processing never touches it — sources cache the
/// slot of each trace-local flow index, so repeat flows ride a `Vec`
/// lookup.
#[derive(Debug, Clone)]
pub struct FlowInterner {
    slots: DetHashMap<FlowId, FlowSlot>,
    flows: Vec<FlowId>,
}

impl Default for FlowInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowInterner {
    /// An empty interner.
    pub fn new() -> Self {
        FlowInterner {
            slots: det_map_with_capacity(1024),
            flows: Vec::new(),
        }
    }

    /// Return `flow`'s slot, assigning the next dense slot on first sight.
    pub fn intern(&mut self, flow: FlowId) -> FlowSlot {
        if let Some(&s) = self.slots.get(&flow) {
            return s;
        }
        let s = FlowSlot(self.flows.len() as u32);
        self.slots.insert(flow, s);
        self.flows.push(flow);
        s
    }

    /// The slot of an already-interned flow, if any.
    pub fn get(&self, flow: FlowId) -> Option<FlowSlot> {
        self.slots.get(&flow).copied()
    }

    /// The `FlowId` interned at `slot`, if assigned.
    pub fn resolve(&self, slot: FlowSlot) -> Option<FlowId> {
        self.flows.get(slot.index()).copied()
    }

    /// Number of distinct flows interned so far. Slots are exactly
    /// `0..len()`.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flow has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(i: u64) -> FlowId {
        FlowId::from_index(i)
    }

    #[test]
    fn slots_are_dense_and_stable() {
        let mut it = FlowInterner::new();
        let a = it.intern(flow(10));
        let b = it.intern(flow(20));
        let c = it.intern(flow(10));
        assert_eq!(a, FlowSlot::new(0));
        assert_eq!(b, FlowSlot::new(1));
        assert_eq!(a, c, "re-interning returns the same slot");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = FlowInterner::new();
        for i in 0..100 {
            let s = it.intern(flow(i));
            assert_eq!(it.resolve(s), Some(flow(i)));
            assert_eq!(it.get(flow(i)), Some(s));
        }
        assert_eq!(it.resolve(FlowSlot::new(100)), None);
        assert_eq!(it.get(flow(1000)), None);
    }

    #[test]
    fn assignment_order_is_emission_order() {
        // Same emission sequence → identical slot assignment, regardless
        // of the FlowId values' hash order.
        let seq = [7u64, 3, 99, 3, 12, 7, 1];
        let mut a = FlowInterner::new();
        let mut b = FlowInterner::new();
        let sa: Vec<_> = seq.iter().map(|&i| a.intern(flow(i))).collect();
        let sb: Vec<_> = seq.iter().map(|&i| b.intern(flow(i))).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.len(), 5);
    }
}
