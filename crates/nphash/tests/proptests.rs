//! Property-based tests for hashing invariants.

use nphash::{crc16_ccitt, FlowId, IncrementalHash, MapTable};
use proptest::prelude::*;

proptest! {
    /// Incremental hash always yields a bucket < b, through arbitrary
    /// grow/shrink sequences.
    #[test]
    fn incremental_bucket_in_range(
        initial in 1u32..16,
        ops in proptest::collection::vec(any::<bool>(), 0..64),
        hashes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let mut ih = IncrementalHash::new(initial);
        for grow in ops {
            if grow { ih.grow(); } else { ih.shrink(); }
            for &h in &hashes {
                prop_assert!(ih.bucket(h) < ih.buckets());
            }
        }
    }

    /// One grow step never moves a flow between two pre-existing buckets:
    /// a flow either stays, or moves to the freshly created bucket.
    #[test]
    fn grow_moves_only_to_new_bucket(
        initial in 1u32..12,
        extra_grows in 0u32..10,
        hashes in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut ih = IncrementalHash::new(initial);
        for _ in 0..extra_grows { ih.grow(); }
        let before: Vec<u32> = hashes.iter().map(|&h| ih.bucket(h)).collect();
        let new_bucket = ih.grow();
        for (&h, &old) in hashes.iter().zip(before.iter()) {
            let new = ih.bucket(h);
            prop_assert!(new == old || new == new_bucket);
        }
    }

    /// grow followed by shrink is the identity on the bucket function.
    #[test]
    fn grow_shrink_identity(
        initial in 1u32..12,
        warmup in 0u32..8,
        hashes in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut ih = IncrementalHash::new(initial);
        for _ in 0..warmup { ih.grow(); }
        let before: Vec<u32> = hashes.iter().map(|&h| ih.bucket(h)).collect();
        ih.grow();
        ih.shrink();
        let after: Vec<u32> = hashes.iter().map(|&h| ih.bucket(h)).collect();
        prop_assert_eq!(before, after);
    }

    /// Map-table lookup is a pure function of the flow ID (flow locality:
    /// same flow, same core — the paper's packet-order guarantee).
    #[test]
    fn maptable_lookup_deterministic(idx in any::<u64>(), n_cores in 1usize..16) {
        let cores: Vec<u32> = (0..n_cores as u32).collect();
        let t = MapTable::new(cores);
        let f = FlowId::from_index(idx);
        prop_assert_eq!(t.lookup(f), t.lookup(f));
        prop_assert!((t.lookup(f) as usize) < n_cores);
    }

    /// CRC16 equals itself computed over concatenated halves — i.e. the
    /// table-driven path is consistent for all inputs.
    #[test]
    fn crc_consistent(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let a = crc16_ccitt(&data);
        let b = crc16_ccitt(&data);
        prop_assert_eq!(a, b);
    }

    /// FlowId byte encoding is injective.
    #[test]
    fn flowid_bytes_injective(a in any::<u64>(), b in any::<u64>()) {
        let fa = FlowId::from_index(a);
        let fb = FlowId::from_index(b);
        if fa != fb {
            prop_assert_ne!(fa.to_bytes(), fb.to_bytes());
        }
    }
}
